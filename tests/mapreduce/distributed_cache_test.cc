#include "src/mapreduce/distributed_cache.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace skymr::mr {
namespace {

TEST(DistributedCacheTest, PutAndGet) {
  DistributedCache cache;
  ASSERT_TRUE(cache.PutValue<int>("answer", 42).ok());
  const auto value = cache.Get<int>("answer");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 42);
}

TEST(DistributedCacheTest, MissingKeyReturnsNull) {
  DistributedCache cache;
  EXPECT_EQ(cache.Get<int>("nope"), nullptr);
}

TEST(DistributedCacheTest, WrongTypeReturnsNull) {
  DistributedCache cache;
  ASSERT_TRUE(cache.PutValue<int>("answer", 42).ok());
  EXPECT_EQ(cache.Get<double>("answer"), nullptr);
  EXPECT_EQ(cache.Get<std::string>("answer"), nullptr);
}

TEST(DistributedCacheTest, EntriesAreImmutable) {
  DistributedCache cache;
  ASSERT_TRUE(cache.PutValue<int>("k", 1).ok());
  const Status s = cache.PutValue<int>("k", 2);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(*cache.Get<int>("k"), 1);
}

TEST(DistributedCacheTest, RemoveAllowsReplace) {
  DistributedCache cache;
  ASSERT_TRUE(cache.PutValue<int>("k", 1).ok());
  cache.Remove("k");
  EXPECT_FALSE(cache.Contains("k"));
  ASSERT_TRUE(cache.PutValue<int>("k", 2).ok());
  EXPECT_EQ(*cache.Get<int>("k"), 2);
}

TEST(DistributedCacheTest, SharedOwnership) {
  DistributedCache cache;
  auto big = std::make_shared<const std::vector<double>>(1000, 3.14);
  ASSERT_TRUE(cache.Put<std::vector<double>>("data", big).ok());
  auto fetched = cache.Get<std::vector<double>>("data");
  EXPECT_EQ(fetched.get(), big.get());  // No copy: broadcast by reference.
  EXPECT_EQ(fetched->size(), 1000u);
}

TEST(DistributedCacheTest, CountsHitsAndMisses) {
  DistributedCache cache;
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  ASSERT_TRUE(cache.PutValue<int>("answer", 42).ok());
  // Found entries count as hits.
  EXPECT_NE(cache.Get<int>("answer"), nullptr);
  EXPECT_NE(cache.Get<int>("answer"), nullptr);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 0u);
  // Absent keys and type mismatches count as misses.
  EXPECT_EQ(cache.Get<int>("nope"), nullptr);
  EXPECT_EQ(cache.Get<double>("answer"), nullptr);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  // Contains() is a pure query, not a fetch: counters stay put.
  EXPECT_TRUE(cache.Contains("answer"));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(DistributedCacheTest, ContainsAndSize) {
  DistributedCache cache;
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(cache.PutValue<int>("a", 1).ok());
  ASSERT_TRUE(cache.PutValue<double>("b", 2.0).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("c"));
}

}  // namespace
}  // namespace skymr::mr
