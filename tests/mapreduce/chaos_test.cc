#include "src/mapreduce/chaos.h"

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mapreduce/job.h"

namespace skymr::mr {
namespace {

// ---------------------------------------------------------------------
// Profiles and schedule validation.
// ---------------------------------------------------------------------

TEST(ChaosScheduleTest, NoneProfileIsDisabled) {
  auto schedule = ChaosProfile("none");
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(schedule->enabled());
}

TEST(ChaosScheduleTest, EveryNamedProfileParsesAndValidates) {
  const std::vector<std::string> names = ChaosProfileNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    auto schedule = ChaosProfile(name);
    ASSERT_TRUE(schedule.ok()) << name;
    EXPECT_TRUE(ValidateChaosSchedule(*schedule, 4).ok()) << name;
  }
}

TEST(ChaosScheduleTest, UnknownProfileRejected) {
  auto schedule = ChaosProfile("definitely-not-a-profile");
  EXPECT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChaosScheduleTest, ValidationRejectsNonTerminatingSchedules) {
  ChaosSchedule schedule;
  schedule.crash_rate = 1.0;  // Every attempt crashes: can never finish.
  EXPECT_FALSE(ValidateChaosSchedule(schedule, 4).ok());

  schedule = ChaosSchedule{};
  schedule.crash_rate = -0.1;
  EXPECT_FALSE(ValidateChaosSchedule(schedule, 4).ok());

  schedule = ChaosSchedule{};
  schedule.corrupt_rate = 1.5;
  EXPECT_FALSE(ValidateChaosSchedule(schedule, 4).ok());

  schedule = ChaosSchedule{};
  schedule.slow_ms = -1.0;
  EXPECT_FALSE(ValidateChaosSchedule(schedule, 4).ok());

  // Contradictory: every attempt within the budget is forced to crash.
  schedule = ChaosSchedule{};
  schedule.crash_until_attempt = 4;
  EXPECT_FALSE(ValidateChaosSchedule(schedule, 4).ok());
  EXPECT_TRUE(ValidateChaosSchedule(schedule, 5).ok());
}

TEST(ChaosScheduleTest, EngineOptionsValidationCoversChaosAndTunables) {
  EngineOptions options;
  options.max_task_attempts = 4;
  options.chaos.crash_rate = 0.5;
  EXPECT_TRUE(ValidateEngineOptions(options).ok());

  options.chaos.crash_rate = 1.0;
  EXPECT_FALSE(ValidateEngineOptions(options).ok());

  options = EngineOptions{};
  options.retry_backoff_base_ms = 10.0;
  options.retry_backoff_max_ms = 1.0;  // base > cap
  EXPECT_FALSE(ValidateEngineOptions(options).ok());

  options = EngineOptions{};
  options.speculation_wave_fraction = 0.0;
  EXPECT_FALSE(ValidateEngineOptions(options).ok());

  options = EngineOptions{};
  options.worker_blacklist_threshold = 0;
  EXPECT_FALSE(ValidateEngineOptions(options).ok());
}

// ---------------------------------------------------------------------
// A small deterministic job to drive injection end to end.
// ---------------------------------------------------------------------

class EmitModMapper : public Mapper<int, int, int> {
 public:
  void Map(const int& record, MapContext<int, int>& ctx) override {
    ctx.Emit(record % 4, record);
  }
};

class SumReducer : public Reducer<int, int, std::pair<int, int>> {
 public:
  void Reduce(const int& key, ValueIterator<int>& values,
              ReduceContext<std::pair<int, int>>& ctx) override {
    int total = 0;
    while (values.HasNext()) {
      total += values.Next();
    }
    ctx.Emit({key, total});
  }
};

using ModSumJob = Job<int, int, int, std::pair<int, int>>;

ModSumJob MakeModSumJob() {
  return ModSumJob("mod-sum", [] { return std::make_unique<EmitModMapper>(); },
                   [] { return std::make_unique<SumReducer>(); });
}

std::vector<int> MakeInput(int n) {
  std::vector<int> input;
  input.reserve(n);
  for (int i = 0; i < n; ++i) {
    input.push_back(i);
  }
  return input;
}

/// Expected output of MakeModSumJob over MakeInput(n), computed directly.
std::map<int, int> ExpectedModSums(int n) {
  std::map<int, int> sums;
  for (int i = 0; i < n; ++i) {
    sums[i % 4] += i;
  }
  return sums;
}

std::map<int, int> ToMap(const std::vector<std::pair<int, int>>& outputs) {
  std::map<int, int> result;
  for (const auto& [key, value] : outputs) {
    EXPECT_EQ(result.count(key), 0u) << "duplicate key " << key;
    result[key] = value;
  }
  return result;
}

EngineOptions ChaosOptions() {
  EngineOptions options;
  options.num_map_tasks = 4;
  options.num_reducers = 3;
  options.max_task_attempts = 8;
  options.retry_backoff_base_ms = 0.0;  // Keep tests fast.
  return options;
}

TEST(ChaosEngineTest, CrashInjectionRetriesToExactOutput) {
  EngineOptions options = ChaosOptions();
  options.chaos.seed = 7;
  options.chaos.crash_rate = 0.2;
  ModSumJob job = MakeModSumJob();
  DistributedCache cache;
  auto result = job.Run(MakeInput(64), options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToMap(result.outputs), ExpectedModSums(64));
}

TEST(ChaosEngineTest, SameSeedSameFaultsSameCounters) {
  EngineOptions options = ChaosOptions();
  options.chaos.seed = 99;
  options.chaos.crash_rate = 0.15;
  options.chaos.corrupt_rate = 0.15;
  DistributedCache cache;

  ModSumJob job1 = MakeModSumJob();
  auto a = job1.Run(MakeInput(64), options, cache);
  ModSumJob job2 = MakeModSumJob();
  auto b = job2.Run(MakeInput(64), options, cache);
  ASSERT_TRUE(a.ok()) << a.status;
  ASSERT_TRUE(b.ok()) << b.status;

  EXPECT_EQ(a.outputs, b.outputs);  // Same order, not just same set.
  for (const char* counter :
       {"mr.task_retries", "mr.chaos_crashes_injected",
        "mr.chaos_corruptions_injected", "mr.backoff_waits"}) {
    EXPECT_EQ(a.metrics.counters.Get(counter),
              b.metrics.counters.Get(counter))
        << counter;
  }
  // The schedule must actually have fired for this test to mean anything.
  EXPECT_GT(a.metrics.counters.Get("mr.chaos_crashes_injected") +
                a.metrics.counters.Get("mr.chaos_corruptions_injected"),
            0);
}

TEST(ChaosEngineTest, DifferentSeedsInjectDifferentFaults) {
  EngineOptions options = ChaosOptions();
  options.chaos.crash_rate = 0.3;
  DistributedCache cache;

  std::vector<int64_t> crash_counts;
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    options.chaos.seed = seed;
    ModSumJob job = MakeModSumJob();
    auto result = job.Run(MakeInput(64), options, cache);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": " << result.status;
    EXPECT_EQ(ToMap(result.outputs), ExpectedModSums(64)) << "seed " << seed;
    crash_counts.push_back(
        result.metrics.counters.Get("mr.chaos_crashes_injected"));
  }
  // Five seeds all injecting the identical number of crashes would mean
  // the seed is not actually feeding the hash.
  bool all_equal = true;
  for (const int64_t count : crash_counts) {
    all_equal = all_equal && count == crash_counts.front();
  }
  EXPECT_FALSE(all_equal);
}

TEST(ChaosEngineTest, CrashUntilAttemptForcesExactRetryCount) {
  EngineOptions options = ChaosOptions();
  options.num_map_tasks = 2;
  options.num_reducers = 1;
  options.chaos.crash_until_attempt = 2;  // Attempts 1 and 2 always crash.
  ModSumJob job = MakeModSumJob();
  DistributedCache cache;
  auto result = job.Run(MakeInput(8), options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToMap(result.outputs), ExpectedModSums(8));
  for (const TaskMetrics& task : result.metrics.map_tasks) {
    EXPECT_EQ(task.attempts, 3);
  }
  // 2 forced crashes per task, 2 map + 1 reduce tasks.
  EXPECT_EQ(result.metrics.counters.Get("mr.chaos_crashes_injected"), 6);
  EXPECT_EQ(result.metrics.counters.Get("mr.task_retries"), 6);
}

TEST(ChaosEngineTest, ShuffleCorruptionRetriesReadCleanBytes) {
  EngineOptions options = ChaosOptions();
  // High enough to fire on several first attempts, low enough that eight
  // consecutive corrupted attempts of one task (which would fail the job)
  // is out of reach for this seed.
  options.chaos.seed = 5;
  options.chaos.corrupt_rate = 0.4;
  ModSumJob job = MakeModSumJob();
  DistributedCache cache;
  auto result = job.Run(MakeInput(64), options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToMap(result.outputs), ExpectedModSums(64));
  EXPECT_GT(result.metrics.counters.Get("mr.chaos_corruptions_injected"), 0);
  EXPECT_GT(result.metrics.counters.Get("mr.task_retries"), 0);
}

TEST(ChaosEngineTest, SlowInjectionDelaysButDoesNotFail) {
  EngineOptions options = ChaosOptions();
  options.chaos.seed = 5;
  options.chaos.slow_rate = 0.5;
  options.chaos.slow_ms = 1.0;
  ModSumJob job = MakeModSumJob();
  DistributedCache cache;
  auto result = job.Run(MakeInput(32), options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToMap(result.outputs), ExpectedModSums(32));
  EXPECT_GT(result.metrics.counters.Get("mr.chaos_slow_injected"), 0);
  EXPECT_EQ(result.metrics.counters.Get("mr.task_retries"), 0);
}

TEST(ChaosEngineTest, BadWorkerGetsBlacklistedAndRoutedAround) {
  EngineOptions options = ChaosOptions();
  options.num_workers = 2;
  options.worker_blacklist_threshold = 2;
  options.chaos.bad_worker = 0;  // Every attempt on worker 0 crashes.
  ModSumJob job = MakeModSumJob();
  DistributedCache cache;
  auto result = job.Run(MakeInput(32), options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToMap(result.outputs), ExpectedModSums(32));
  EXPECT_EQ(result.metrics.counters.Get("mr.blacklisted_workers"), 1);
}

// ---------------------------------------------------------------------
// Cache fault injection.
// ---------------------------------------------------------------------

TEST(ChaosEngineTest, CacheFaultsSurfaceAsMissesInsideTasks) {
  // The mapper tolerates a missing cache entry by falling back to 0, and
  // counts how often the (present) entry read as missing.
  class CacheReadingMapper : public Mapper<int, int, int> {
   public:
    void Map(const int& record, MapContext<int, int>& ctx) override {
      const auto offset = ctx.cache().Get<int>("offset");
      if (offset == nullptr) {
        ctx.counters().Add("test.cache_faults_seen", 1);
        ctx.Emit(0, record);
      } else {
        ctx.Emit(0, record + *offset);
      }
    }
  };
  class CountReducer : public Reducer<int, int, int> {
   public:
    void Reduce(const int& key, ValueIterator<int>& values,
                ReduceContext<int>& ctx) override {
      (void)key;
      int count = 0;
      while (values.HasNext()) {
        values.Next();
        ++count;
      }
      ctx.Emit(count);
    }
  };
  Job<int, int, int, int> job(
      "cache-chaos", [] { return std::make_unique<CacheReadingMapper>(); },
      [] { return std::make_unique<CountReducer>(); });
  DistributedCache cache;
  ASSERT_TRUE(cache.PutValue<int>("offset", 100).ok());
  EngineOptions options = ChaosOptions();
  options.num_reducers = 1;
  options.chaos.seed = 3;
  options.chaos.cache_fail_rate = 0.5;
  auto result = job.Run(MakeInput(64), options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 64);  // Every record still processed.
  EXPECT_GT(result.metrics.counters.Get("test.cache_faults_seen"), 0);
  EXPECT_GT(result.metrics.counters.Get("mr.chaos_cache_faults_injected"),
            0);
}

TEST(ChaosEngineTest, CacheFaultsNeverFireOutsideTaskScope) {
  // No ChaosTaskScope is active on the test thread, so injection is off
  // regardless of any schedule used elsewhere.
  EXPECT_FALSE(ChaosInjectCacheFault());
}

// ---------------------------------------------------------------------
// Speculative execution.
// ---------------------------------------------------------------------

TEST(ChaosEngineTest, SpeculativeDuplicateDoesNotDuplicateOutput) {
  EngineOptions options = ChaosOptions();
  options.num_map_tasks = 4;
  options.num_reducers = 1;
  options.speculative_execution = true;
  options.speculation_wave_fraction = 0.5;
  options.speculation_slowdown = 1.5;
  options.speculation_poll_ms = 1.0;
  // Task 0 stalls 200ms on its first attempt; the duplicate runs clean.
  options.chaos.slow_task = 0;
  options.chaos.slow_until_attempt = 1;
  options.chaos.slow_ms = 200.0;
  ModSumJob job = MakeModSumJob();
  DistributedCache cache;
  auto result = job.Run(MakeInput(64), options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToMap(result.outputs), ExpectedModSums(64));
  EXPECT_GE(result.metrics.counters.Get("mr.speculative_launched"), 1);
}

TEST(ChaosEngineTest, SpeculationOffByDefaultKeepsCounterSetLean) {
  ModSumJob job = MakeModSumJob();
  EngineOptions options;
  options.num_map_tasks = 2;
  DistributedCache cache;
  auto result = job.Run(MakeInput(16), options, cache);
  ASSERT_TRUE(result.ok());
  // Chaos-free, speculation-free runs must not grow new counter keys
  // (committed bench baselines diff the exact key set).
  const auto& values = result.metrics.counters.values();
  EXPECT_EQ(values.count("mr.speculative_launched"), 0u);
  EXPECT_EQ(values.count("mr.chaos_crashes_injected"), 0u);
  EXPECT_EQ(values.count("mr.blacklisted_workers"), 0u);
}

// ---------------------------------------------------------------------
// ValueIterator re-entrancy across reduce retries.
// ---------------------------------------------------------------------

TEST(ChaosEngineTest, ReducerRetryMidIterationSeesFreshValueIterator) {
  // First attempt consumes part of the iterator then dies; the retry must
  // observe every value again (the shuffle data is immutable and each
  // attempt gets a fresh iterator).
  class MidIterationFlakyReducer : public Reducer<int, int, int> {
   public:
    explicit MidIterationFlakyReducer(std::atomic<int>* attempts)
        : attempts_(attempts) {}
    void Reduce(const int& key, ValueIterator<int>& values,
                ReduceContext<int>& ctx) override {
      (void)key;
      int total = 0;
      int seen = 0;
      while (values.HasNext()) {
        total += values.Next();
        ++seen;
        if (seen == 2 && attempts_->fetch_add(1) < 1) {
          throw TaskFailure("died mid-iteration");
        }
      }
      ctx.Emit(total);
    }

   private:
    std::atomic<int>* attempts_;
  };
  class IdentityMapper : public Mapper<int, int, int> {
   public:
    void Map(const int& record, MapContext<int, int>& ctx) override {
      ctx.Emit(0, record);
    }
  };
  auto attempts = std::make_shared<std::atomic<int>>(0);
  Job<int, int, int, int> job(
      "mid-iteration", [] { return std::make_unique<IdentityMapper>(); },
      [attempts] {
        return std::make_unique<MidIterationFlakyReducer>(attempts.get());
      });
  EngineOptions options;
  options.num_map_tasks = 2;
  options.max_task_attempts = 3;
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{1, 2, 3, 4, 5}, options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 15);  // All five values seen by the retry.
  EXPECT_EQ(result.metrics.reduce_tasks[0].attempts, 2);
}

}  // namespace
}  // namespace skymr::mr
