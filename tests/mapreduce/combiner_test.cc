#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mapreduce/job.h"

namespace skymr::mr {
namespace {

class WordCountMapper : public Mapper<std::string, std::string, int> {
 public:
  void Map(const std::string& line,
           MapContext<std::string, int>& ctx) override {
    std::istringstream stream(line);
    std::string word;
    while (stream >> word) {
      ctx.Emit(word, 1);
    }
  }
};

class SumCombiner
    : public Reducer<std::string, int, std::pair<std::string, int>> {
 public:
  void Reduce(const std::string& word, ValueIterator<int>& counts,
              ReduceContext<std::pair<std::string, int>>& ctx) override {
    int total = 0;
    while (counts.HasNext()) {
      total += counts.Next();
    }
    ctx.Emit({word, total});
  }
};

class WordCountReducer
    : public Reducer<std::string, int, std::pair<std::string, int>> {
 public:
  void Reduce(const std::string& word, ValueIterator<int>& counts,
              ReduceContext<std::pair<std::string, int>>& ctx) override {
    int total = 0;
    while (counts.HasNext()) {
      total += counts.Next();
    }
    ctx.Emit({word, total});
  }
};

using WordCountJob =
    Job<std::string, std::string, int, std::pair<std::string, int>>;

WordCountJob MakeJob(bool with_combiner) {
  WordCountJob job(
      "wordcount", [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<WordCountReducer>(); });
  if (with_combiner) {
    job.set_combiner([] { return std::make_unique<SumCombiner>(); });
  }
  return job;
}

const std::vector<std::string> kCorpus = {
    "a a a b", "b a a", "c c c c a", "a b c",
};

std::map<std::string, int> ToMap(
    const std::vector<std::pair<std::string, int>>& outputs) {
  std::map<std::string, int> result;
  for (const auto& [word, count] : outputs) {
    result[word] += count;
  }
  return result;
}

TEST(CombinerTest, SameResultWithAndWithoutCombiner) {
  EngineOptions options;
  options.num_map_tasks = 2;
  options.num_reducers = 3;
  DistributedCache cache;
  WordCountJob plain = MakeJob(false);
  WordCountJob combined = MakeJob(true);
  auto a = plain.Run(kCorpus, options, cache);
  auto b = combined.Run(kCorpus, options, cache);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToMap(a.outputs), ToMap(b.outputs));
  const auto counts = ToMap(b.outputs);
  EXPECT_EQ(counts.at("a"), 7);
  EXPECT_EQ(counts.at("b"), 3);
  EXPECT_EQ(counts.at("c"), 5);
}

TEST(CombinerTest, ReducesShuffleTraffic) {
  EngineOptions options;
  options.num_map_tasks = 2;
  options.num_reducers = 2;
  DistributedCache cache;
  WordCountJob plain = MakeJob(false);
  WordCountJob combined = MakeJob(true);
  auto a = plain.Run(kCorpus, options, cache);
  auto b = combined.Run(kCorpus, options, cache);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // 15 words in the corpus; the combiner collapses per-mapper duplicates.
  EXPECT_LT(b.metrics.shuffle_bytes, a.metrics.shuffle_bytes);
  uint64_t combined_records = 0;
  for (const auto& t : b.metrics.reduce_tasks) {
    combined_records += t.input_records;
  }
  EXPECT_LT(combined_records, 15u);
  EXPECT_EQ(b.metrics.counters.Get("mr.combine_input_records"), 15);
  EXPECT_EQ(b.metrics.counters.Get("mr.combine_output_records"),
            static_cast<int64_t>(combined_records));
}

TEST(CombinerTest, CombinerSeesOnlyItsOwnMapperRecords) {
  // With one map task per record, the combiner cannot collapse anything:
  // shuffle record count equals the plain run.
  EngineOptions options;
  options.num_map_tasks = 16;
  options.num_reducers = 1;
  DistributedCache cache;
  WordCountJob combined = MakeJob(true);
  auto result =
      combined.Run(std::vector<std::string>{"x", "x", "x"}, options, cache);
  ASSERT_TRUE(result.ok());
  uint64_t records = 0;
  for (const auto& t : result.metrics.reduce_tasks) {
    records += t.input_records;
  }
  EXPECT_EQ(records, 3u);  // One "x" per mapper: nothing to combine.
  EXPECT_EQ(ToMap(result.outputs).at("x"), 3);
}

TEST(CombinerTest, FailingCombinerRetriesTask) {
  class FlakyCombiner
      : public Reducer<std::string, int, std::pair<std::string, int>> {
   public:
    explicit FlakyCombiner(std::atomic<int>* calls) : calls_(calls) {}
    void Reduce(const std::string& word, ValueIterator<int>& counts,
                ReduceContext<std::pair<std::string, int>>& ctx) override {
      if (calls_->fetch_add(1) == 0) {
        throw TaskFailure("combiner hiccup");
      }
      int total = 0;
      while (counts.HasNext()) {
        total += counts.Next();
      }
      ctx.Emit({word, total});
    }

   private:
    std::atomic<int>* calls_;
  };
  auto calls = std::make_shared<std::atomic<int>>(0);
  WordCountJob job(
      "flaky-combine", [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<WordCountReducer>(); });
  job.set_combiner(
      [calls] { return std::make_unique<FlakyCombiner>(calls.get()); });
  EngineOptions options;
  options.num_map_tasks = 1;
  options.max_task_attempts = 3;
  DistributedCache cache;
  auto result =
      job.Run(std::vector<std::string>{"a a b"}, options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  const auto counts = ToMap(result.outputs);
  EXPECT_EQ(counts.at("a"), 2);
  EXPECT_EQ(counts.at("b"), 1);
  EXPECT_EQ(result.metrics.map_tasks[0].attempts, 2);
}

}  // namespace
}  // namespace skymr::mr
