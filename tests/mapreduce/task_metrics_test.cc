#include "src/mapreduce/task_metrics.h"

#include <gtest/gtest.h>

namespace skymr::mr {
namespace {

TaskMetrics WithCounter(const char* name, int64_t value) {
  TaskMetrics t;
  t.counters.Add(name, value);
  return t;
}

TEST(JobMetricsTest, MaxMapCounterPicksLargest) {
  JobMetrics metrics;
  metrics.map_tasks.push_back(WithCounter("x", 5));
  metrics.map_tasks.push_back(WithCounter("x", 12));
  metrics.map_tasks.push_back(WithCounter("x", 3));
  EXPECT_EQ(metrics.MaxMapCounter("x"), 12);
  EXPECT_EQ(metrics.MaxMapCounter("absent"), 0);
}

TEST(JobMetricsTest, MaxReduceCounterPicksLargest) {
  JobMetrics metrics;
  metrics.reduce_tasks.push_back(WithCounter("y", 7));
  metrics.reduce_tasks.push_back(WithCounter("y", 2));
  EXPECT_EQ(metrics.MaxReduceCounter("y"), 7);
}

TEST(JobMetricsTest, EmptyTaskListsYieldZero) {
  JobMetrics metrics;
  EXPECT_EQ(metrics.MaxMapCounter("x"), 0);
  EXPECT_EQ(metrics.MaxReduceCounter("x"), 0);
}

TEST(TaskMetricsTest, Defaults) {
  TaskMetrics t;
  EXPECT_DOUBLE_EQ(t.busy_seconds, 0.0);
  EXPECT_EQ(t.input_records, 0u);
  EXPECT_EQ(t.output_records, 0u);
  EXPECT_EQ(t.input_bytes, 0u);
  EXPECT_EQ(t.output_bytes, 0u);
  EXPECT_EQ(t.attempts, 1);
}

}  // namespace
}  // namespace skymr::mr
