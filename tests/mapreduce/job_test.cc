#include "src/mapreduce/job.h"

#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace skymr::mr {
namespace {

// ---------------------------------------------------------------------
// Word count: the canonical MapReduce program, exercising multi-value
// grouping, multiple reducers, and deterministic output.
// ---------------------------------------------------------------------

class WordCountMapper : public Mapper<std::string, std::string, int> {
 public:
  void Map(const std::string& line,
           MapContext<std::string, int>& ctx) override {
    std::istringstream stream(line);
    std::string word;
    while (stream >> word) {
      ctx.Emit(word, 1);
    }
  }
};

class WordCountReducer
    : public Reducer<std::string, int, std::pair<std::string, int>> {
 public:
  void Reduce(const std::string& word, ValueIterator<int>& counts,
              ReduceContext<std::pair<std::string, int>>& ctx) override {
    int total = 0;
    while (counts.HasNext()) {
      total += counts.Next();
    }
    ctx.Emit({word, total});
  }
};

using WordCountJob =
    Job<std::string, std::string, int, std::pair<std::string, int>>;

WordCountJob MakeWordCountJob() {
  return WordCountJob(
      "wordcount", [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<WordCountReducer>(); });
}

std::map<std::string, int> ToMap(
    const std::vector<std::pair<std::string, int>>& outputs) {
  std::map<std::string, int> result;
  for (const auto& [word, count] : outputs) {
    EXPECT_EQ(result.count(word), 0u) << "duplicate key " << word;
    result[word] = count;
  }
  return result;
}

const std::vector<std::string> kCorpus = {
    "the quick brown fox", "jumps over the lazy dog",
    "the dog barks",       "quick quick slow",
};

TEST(JobTest, WordCountSingleReducer) {
  WordCountJob job = MakeWordCountJob();
  EngineOptions options;
  options.num_map_tasks = 2;
  options.num_reducers = 1;
  DistributedCache cache;
  auto result = job.Run(kCorpus, options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  const auto counts = ToMap(result.outputs);
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("quick"), 3);
  EXPECT_EQ(counts.at("dog"), 2);
  EXPECT_EQ(counts.at("fox"), 1);
  EXPECT_EQ(counts.size(), 10u);
}

TEST(JobTest, WordCountManyReducersSameResult) {
  for (const int reducers : {2, 3, 7}) {
    WordCountJob job = MakeWordCountJob();
    EngineOptions options;
    options.num_map_tasks = 3;
    options.num_reducers = reducers;
    DistributedCache cache;
    auto result = job.Run(kCorpus, options, cache);
    ASSERT_TRUE(result.ok());
    const auto counts = ToMap(result.outputs);
    EXPECT_EQ(counts.at("the"), 3) << reducers << " reducers";
    EXPECT_EQ(counts.size(), 10u);
    EXPECT_EQ(result.metrics.reduce_tasks.size(),
              static_cast<size_t>(reducers));
  }
}

TEST(JobTest, MoreMapTasksThanRecords) {
  WordCountJob job = MakeWordCountJob();
  EngineOptions options;
  options.num_map_tasks = 16;  // More than 4 input lines.
  options.num_reducers = 2;
  DistributedCache cache;
  auto result = job.Run(kCorpus, options, cache);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToMap(result.outputs).at("quick"), 3);
  EXPECT_EQ(result.metrics.map_tasks.size(), 16u);
}

TEST(JobTest, EmptyInputRunsCleanly) {
  WordCountJob job = MakeWordCountJob();
  EngineOptions options;
  options.num_map_tasks = 4;
  options.num_reducers = 2;
  DistributedCache cache;
  auto result = job.Run(std::vector<std::string>{}, options, cache);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.outputs.empty());
}

TEST(JobTest, DeterministicOutputOrderAcrossRuns) {
  EngineOptions options;
  options.num_map_tasks = 3;
  options.num_reducers = 3;
  options.num_threads = 4;
  DistributedCache cache;
  WordCountJob job1 = MakeWordCountJob();
  WordCountJob job2 = MakeWordCountJob();
  auto a = job1.Run(kCorpus, options, cache);
  auto b = job2.Run(kCorpus, options, cache);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.outputs, b.outputs);  // Same order, not just same set.
}

TEST(JobTest, InvalidOptionsRejected) {
  WordCountJob job = MakeWordCountJob();
  DistributedCache cache;
  EngineOptions options;
  options.num_map_tasks = 0;
  EXPECT_FALSE(job.Run(kCorpus, options, cache).ok());
  options.num_map_tasks = 1;
  options.num_reducers = 0;
  EXPECT_FALSE(job.Run(kCorpus, options, cache).ok());
}

// ---------------------------------------------------------------------
// Lifecycle, grouping semantics, value ordering.
// ---------------------------------------------------------------------

class LifecycleMapper : public Mapper<int, int, int> {
 public:
  void Setup(MapContext<int, int>& ctx) override {
    setup_seen_ = true;
    ctx.counters().Add("setup", 1);
  }
  void Map(const int& record, MapContext<int, int>& ctx) override {
    ASSERT_TRUE(setup_seen_);
    // Key 0 collects everything; value encodes (task, sequence).
    ctx.Emit(0, ctx.task_id() * 1000 + record);
  }
  void Cleanup(MapContext<int, int>& ctx) override {
    ctx.counters().Add("cleanup", 1);
  }

 private:
  bool setup_seen_ = false;
};

class CollectReducer : public Reducer<int, int, std::vector<int>> {
 public:
  void Reduce(const int& key, ValueIterator<int>& values,
              ReduceContext<std::vector<int>>& ctx) override {
    (void)key;
    ctx.Emit(values.Drain());
  }
};

TEST(JobTest, SetupCleanupCalledOncePerTask) {
  Job<int, int, int, std::vector<int>> job(
      "lifecycle", [] { return std::make_unique<LifecycleMapper>(); },
      [] { return std::make_unique<CollectReducer>(); });
  EngineOptions options;
  options.num_map_tasks = 5;
  options.num_reducers = 1;
  DistributedCache cache;
  const std::vector<int> input = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto result = job.Run(input, options, cache);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.metrics.counters.Get("setup"), 5);
  EXPECT_EQ(result.metrics.counters.Get("cleanup"), 5);
}

TEST(JobTest, ValuesOrderedByMapperThenEmitOrder) {
  Job<int, int, int, std::vector<int>> job(
      "ordering", [] { return std::make_unique<LifecycleMapper>(); },
      [] { return std::make_unique<CollectReducer>(); });
  EngineOptions options;
  options.num_map_tasks = 2;  // Split: {1,2,3} to task 0, {4,5,6} to task 1.
  options.num_reducers = 1;
  options.num_threads = 4;
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{1, 2, 3, 4, 5, 6}, options, cache);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0],
            (std::vector<int>{1, 2, 3, 1004, 1005, 1006}));
}

TEST(JobTest, KeysArriveSortedWithinReducer) {
  class EmitKeyMapper : public Mapper<int, int, int> {
   public:
    void Map(const int& record, MapContext<int, int>& ctx) override {
      ctx.Emit(record, record);
    }
  };
  class KeyOrderReducer : public Reducer<int, int, int> {
   public:
    void Reduce(const int& key, ValueIterator<int>& values,
                ReduceContext<int>& ctx) override {
      (void)values;  // Never pulled: the values stay serialized.
      ctx.Emit(key);
    }
  };
  Job<int, int, int, int> job(
      "key-order", [] { return std::make_unique<EmitKeyMapper>(); },
      [] { return std::make_unique<KeyOrderReducer>(); });
  EngineOptions options;
  options.num_map_tasks = 3;
  options.num_reducers = 1;
  DistributedCache cache;
  auto result =
      job.Run(std::vector<int>{9, 3, 7, 1, 8, 2}, options, cache);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.outputs, (std::vector<int>{1, 2, 3, 7, 8, 9}));
}

// ---------------------------------------------------------------------
// Distributed cache access from tasks.
// ---------------------------------------------------------------------

TEST(JobTest, TasksReadDistributedCache) {
  class AddOffsetMapper : public Mapper<int, int, int> {
   public:
    void Setup(MapContext<int, int>& ctx) override {
      offset_ = *ctx.cache().Get<int>("offset");
    }
    void Map(const int& record, MapContext<int, int>& ctx) override {
      ctx.Emit(0, record + offset_);
    }

   private:
    int offset_ = 0;
  };
  class SumReducer : public Reducer<int, int, int> {
   public:
    void Reduce(const int& key, ValueIterator<int>& values,
                ReduceContext<int>& ctx) override {
      (void)key;
      int total = 0;
      while (values.HasNext()) {
        total += values.Next();
      }
      ctx.Emit(total);
    }
  };
  Job<int, int, int, int> job(
      "cache", [] { return std::make_unique<AddOffsetMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  DistributedCache cache;
  ASSERT_TRUE(cache.PutValue<int>("offset", 100).ok());
  EngineOptions options;
  options.num_map_tasks = 2;
  auto result = job.Run(std::vector<int>{1, 2, 3}, options, cache);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 306);
}

// ---------------------------------------------------------------------
// Failure injection and retries.
// ---------------------------------------------------------------------

class FlakyMapper : public Mapper<int, int, int> {
 public:
  explicit FlakyMapper(std::atomic<int>* attempts) : attempts_(attempts) {}
  void Map(const int& record, MapContext<int, int>& ctx) override {
    ctx.Emit(0, record);
  }
  void Cleanup(MapContext<int, int>& ctx) override {
    (void)ctx;
    if (attempts_->fetch_add(1) < 2) {
      throw TaskFailure("injected failure");
    }
  }

 private:
  std::atomic<int>* attempts_;
};

class SumAllReducer : public Reducer<int, int, int> {
 public:
  void Reduce(const int& key, ValueIterator<int>& values,
              ReduceContext<int>& ctx) override {
    (void)key;
    int total = 0;
    while (values.HasNext()) {
      total += values.Next();
    }
    ctx.Emit(total);
  }
};

TEST(JobTest, TaskRetriesUntilSuccess) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  Job<int, int, int, int> job(
      "flaky",
      [attempts] { return std::make_unique<FlakyMapper>(attempts.get()); },
      [] { return std::make_unique<SumAllReducer>(); });
  EngineOptions options;
  options.num_map_tasks = 1;
  options.max_task_attempts = 4;
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{1, 2, 3}, options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.outputs[0], 6);  // No duplicated emits from retries.
  EXPECT_EQ(result.metrics.map_tasks[0].attempts, 3);
}

TEST(JobTest, TaskFailsAfterMaxAttempts) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  Job<int, int, int, int> job(
      "flaky",
      [attempts] { return std::make_unique<FlakyMapper>(attempts.get()); },
      [] { return std::make_unique<SumAllReducer>(); });
  EngineOptions options;
  options.num_map_tasks = 1;
  options.max_task_attempts = 2;  // FlakyMapper needs 3.
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{1}, options, cache);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
}

TEST(JobTest, ReducerRetriesDoNotDuplicateOutput) {
  class FlakyReducer : public Reducer<int, int, int> {
   public:
    explicit FlakyReducer(std::atomic<int>* attempts)
        : attempts_(attempts) {}
    void Reduce(const int& key, ValueIterator<int>& values,
                ReduceContext<int>& ctx) override {
      (void)key;
      int total = 0;
      while (values.HasNext()) {
        total += values.Next();
      }
      ctx.Emit(total);
      if (attempts_->fetch_add(1) < 1) {
        throw TaskFailure("reducer hiccup");
      }
    }

   private:
    std::atomic<int>* attempts_;
  };
  class IdentityMapper : public Mapper<int, int, int> {
   public:
    void Map(const int& record, MapContext<int, int>& ctx) override {
      ctx.Emit(0, record);
    }
  };
  auto attempts = std::make_shared<std::atomic<int>>(0);
  Job<int, int, int, int> job(
      "flaky-reduce", [] { return std::make_unique<IdentityMapper>(); },
      [attempts] { return std::make_unique<FlakyReducer>(attempts.get()); });
  EngineOptions options;
  options.max_task_attempts = 3;
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{2, 3}, options, cache);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 5);
}

// ---------------------------------------------------------------------
// Partitioner routing, metrics, and serialization of the shuffle.
// ---------------------------------------------------------------------

TEST(JobTest, CustomPartitionerRoutesKeys) {
  class EmitKeyMapper : public Mapper<int, int, int> {
   public:
    void Map(const int& record, MapContext<int, int>& ctx) override {
      ctx.Emit(record, record);
    }
  };
  class TagReducer : public Reducer<int, int, std::pair<int, int>> {
   public:
    void Reduce(const int& key, ValueIterator<int>& values,
                ReduceContext<std::pair<int, int>>& ctx) override {
      (void)values;
      ctx.Emit({ctx.task_id(), key});
    }
  };
  Job<int, int, int, std::pair<int, int>> job(
      "partitioned", [] { return std::make_unique<EmitKeyMapper>(); },
      [] { return std::make_unique<TagReducer>(); });
  job.set_partitioner([](const int& key, int r) { return key % r; });
  EngineOptions options;
  options.num_map_tasks = 1;
  options.num_reducers = 2;
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{0, 1, 2, 3}, options, cache);
  ASSERT_TRUE(result.ok());
  for (const auto& [reducer, key] : result.outputs) {
    EXPECT_EQ(reducer, key % 2);
  }
}

TEST(JobTest, OutOfRangePartitionerFailsTask) {
  class BadKeyMapper : public Mapper<int, int, int> {
   public:
    void Map(const int& record, MapContext<int, int>& ctx) override {
      ctx.Emit(record, record);
    }
  };
  Job<int, int, int, int> job(
      "bad-partitioner", [] { return std::make_unique<BadKeyMapper>(); },
      [] { return std::make_unique<SumAllReducer>(); });
  job.set_partitioner([](const int&, int) { return 99; });
  EngineOptions options;
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{1}, options, cache);
  EXPECT_FALSE(result.ok());
}

TEST(JobTest, MetricsCountRecordsAndBytes) {
  WordCountJob job = MakeWordCountJob();
  EngineOptions options;
  options.num_map_tasks = 2;
  options.num_reducers = 2;
  DistributedCache cache;
  auto result = job.Run(kCorpus, options, cache);
  ASSERT_TRUE(result.ok());

  uint64_t map_in = 0;
  uint64_t map_out = 0;
  uint64_t map_bytes = 0;
  for (const TaskMetrics& t : result.metrics.map_tasks) {
    map_in += t.input_records;
    map_out += t.output_records;
    map_bytes += t.output_bytes;
  }
  EXPECT_EQ(map_in, kCorpus.size());
  EXPECT_EQ(map_out, 15u);  // 15 words in the corpus.
  EXPECT_EQ(map_bytes, result.metrics.shuffle_bytes);

  uint64_t reduce_in_bytes = 0;
  uint64_t reduce_in_records = 0;
  for (const TaskMetrics& t : result.metrics.reduce_tasks) {
    reduce_in_bytes += t.input_bytes;
    reduce_in_records += t.input_records;
  }
  EXPECT_EQ(reduce_in_bytes, result.metrics.shuffle_bytes);
  EXPECT_EQ(reduce_in_records, 15u);
  EXPECT_GT(result.metrics.wall_seconds, 0.0);
}

TEST(JobTest, ValuesPhysicallySerializedThroughShuffle) {
  // A value type whose pointer identity would leak if the engine passed
  // objects by reference: the reducer must observe a distinct buffer.
  class VectorMapper
      : public Mapper<int, int, std::vector<double>> {
   public:
    void Map(const int& record,
             MapContext<int, std::vector<double>>& ctx) override {
      payload_.assign(3, static_cast<double>(record));
      ctx.Emit(0, payload_);
      payload_[0] = -1.0;  // Mutation after Emit must not affect delivery.
    }

   private:
    std::vector<double> payload_;
  };
  class CheckReducer
      : public Reducer<int, std::vector<double>, double> {
   public:
    void Reduce(const int& key, ValueIterator<std::vector<double>>& values,
                ReduceContext<double>& ctx) override {
      (void)key;
      while (values.HasNext()) {
        const std::vector<double> v = values.Next();
        EXPECT_EQ(v[0], v[1]);  // Mutation after Emit not visible.
        ctx.Emit(v[0]);
      }
    }
  };
  Job<int, int, std::vector<double>, double> job(
      "serialize", [] { return std::make_unique<VectorMapper>(); },
      [] { return std::make_unique<CheckReducer>(); });
  EngineOptions options;
  DistributedCache cache;
  auto result = job.Run(std::vector<int>{5, 6}, options, cache);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.outputs, (std::vector<double>{5.0, 6.0}));
}

}  // namespace
}  // namespace skymr::mr
