// Engine stress: randomized jobs compared against a sequential oracle,
// across random task counts, thread counts, partitioners, and failure
// injection. The engine's contract — grouping, ordering, determinism —
// must hold under every configuration.

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mapreduce/job.h"

namespace skymr::mr {
namespace {

/// Emits (value % buckets, value) for each input value.
class ModMapper : public Mapper<int, int, int> {
 public:
  explicit ModMapper(int buckets) : buckets_(buckets) {}
  void Map(const int& value, MapContext<int, int>& ctx) override {
    ctx.Emit(value % buckets_, value);
  }

 private:
  int buckets_;
};

/// Emits (key, sum of values, count of values).
struct GroupStat {
  int key;
  long sum;
  size_t count;
  bool operator==(const GroupStat& other) const {
    return key == other.key && sum == other.sum && count == other.count;
  }
};

}  // namespace
}  // namespace skymr::mr

namespace skymr {
template <>
struct Serde<mr::GroupStat> {
  static void Write(const mr::GroupStat& v, ByteSink* sink) {
    sink->AppendRaw(v.key);
    sink->AppendRaw(v.sum);
    sink->AppendRaw<uint64_t>(v.count);
  }
  static mr::GroupStat Read(ByteSource* source) {
    mr::GroupStat v;
    v.key = source->ReadRaw<int>();
    v.sum = source->ReadRaw<long>();
    v.count = static_cast<size_t>(source->ReadRaw<uint64_t>());
    return v;
  }
};
}  // namespace skymr

namespace skymr::mr {
namespace {

class StatReducer : public Reducer<int, int, GroupStat> {
 public:
  void Reduce(const int& key, ValueIterator<int>& values,
              ReduceContext<GroupStat>& ctx) override {
    GroupStat stat{key, 0, values.remaining()};
    while (values.HasNext()) {
      stat.sum += values.Next();
    }
    ctx.Emit(stat);
  }
};

TEST(EngineStressTest, RandomConfigurationsMatchSequentialOracle) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const int buckets = 1 + static_cast<int>(rng.NextBounded(9));
    const size_t n = rng.NextBounded(500);
    std::vector<int> input(n);
    for (auto& v : input) {
      v = static_cast<int>(rng.NextBounded(1000));
    }

    // Sequential oracle.
    std::map<int, GroupStat> expected;
    for (const int v : input) {
      auto [it, inserted] =
          expected.try_emplace(v % buckets, GroupStat{v % buckets, 0, 0});
      it->second.sum += v;
      ++it->second.count;
    }

    Job<int, int, int, GroupStat> job(
        "stress",
        [buckets] { return std::make_unique<ModMapper>(buckets); },
        [] { return std::make_unique<StatReducer>(); });
    if (rng.NextBounded(2) == 0) {
      job.set_partitioner(
          [](const int& key, int r) { return (key * 7 + 3) % r; });
    }
    EngineOptions options;
    options.num_map_tasks = 1 + static_cast<int>(rng.NextBounded(12));
    options.num_reducers = 1 + static_cast<int>(rng.NextBounded(8));
    options.num_threads = 1 + static_cast<int>(rng.NextBounded(8));
    DistributedCache cache;
    auto result = job.Run(input, options, cache);
    ASSERT_TRUE(result.ok()) << "trial " << trial << ": " << result.status;

    std::map<int, GroupStat> actual;
    for (const GroupStat& stat : result.outputs) {
      ASSERT_EQ(actual.count(stat.key), 0u)
          << "key " << stat.key << " reduced twice (trial " << trial << ")";
      actual[stat.key] = stat;
    }
    ASSERT_EQ(actual.size(), expected.size()) << "trial " << trial;
    for (const auto& [key, stat] : expected) {
      ASSERT_TRUE(actual[key] == stat)
          << "trial " << trial << " key " << key;
    }
  }
}

TEST(EngineStressTest, RandomTransientFailuresAlwaysRecover) {
  Rng rng(888);
  for (int trial = 0; trial < 15; ++trial) {
    // Every map task fails on its first attempt, succeeds afterwards.
    class FirstAttemptFails : public Mapper<int, int, int> {
     public:
      FirstAttemptFails(std::atomic<int>* failures, int buckets)
          : failures_(failures), buckets_(buckets) {}
      void Setup(MapContext<int, int>& ctx) override {
        // One failure per (task, trial): key the attempt on the task id.
        const int mask = 1 << ctx.task_id();
        const int before = failures_->fetch_or(mask);
        if ((before & mask) == 0) {
          throw TaskFailure("first attempt dies");
        }
      }
      void Map(const int& value, MapContext<int, int>& ctx) override {
        ctx.Emit(value % buckets_, value);
      }

     private:
      std::atomic<int>* failures_;
      int buckets_;
    };

    auto failures = std::make_shared<std::atomic<int>>(0);
    const int buckets = 1 + static_cast<int>(rng.NextBounded(4));
    Job<int, int, int, GroupStat> job(
        "flaky-stress",
        [failures, buckets] {
          return std::make_unique<FirstAttemptFails>(failures.get(),
                                                     buckets);
        },
        [] { return std::make_unique<StatReducer>(); });
    EngineOptions options;
    options.num_map_tasks = 1 + static_cast<int>(rng.NextBounded(6));
    options.num_reducers = 1 + static_cast<int>(rng.NextBounded(4));
    options.max_task_attempts = 3;
    std::vector<int> input(100);
    long total = 0;
    for (auto& v : input) {
      v = static_cast<int>(rng.NextBounded(50));
      total += v;
    }
    DistributedCache cache;
    auto result = job.Run(input, options, cache);
    ASSERT_TRUE(result.ok()) << "trial " << trial << ": " << result.status;
    long sum = 0;
    size_t count = 0;
    for (const GroupStat& stat : result.outputs) {
      sum += stat.sum;
      count += stat.count;
    }
    EXPECT_EQ(sum, total) << "trial " << trial;
    EXPECT_EQ(count, input.size()) << "trial " << trial;
    for (const TaskMetrics& t : result.metrics.map_tasks) {
      EXPECT_EQ(t.attempts, 2);
    }
  }
}

}  // namespace
}  // namespace skymr::mr
