#include "src/mapreduce/cluster_model.h"

#include <gtest/gtest.h>

namespace skymr::mr {
namespace {

TEST(LptMakespanTest, EmptyTasks) {
  EXPECT_DOUBLE_EQ(ClusterModel::LptMakespan({}, 4), 0.0);
}

TEST(LptMakespanTest, SingleSlotSumsTasks) {
  EXPECT_DOUBLE_EQ(ClusterModel::LptMakespan({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(LptMakespanTest, PerfectSplit) {
  EXPECT_DOUBLE_EQ(ClusterModel::LptMakespan({2.0, 2.0, 2.0, 2.0}, 4), 2.0);
}

TEST(LptMakespanTest, LongestTaskLowerBounds) {
  EXPECT_DOUBLE_EQ(ClusterModel::LptMakespan({10.0, 1.0, 1.0}, 8), 10.0);
}

TEST(LptMakespanTest, LptGreedyBalances) {
  // Tasks {5,4,3,3,3} on 2 slots: LPT gives {5,3,3}=9... actually
  // {5,3} = 8 and {4,3,3} = 10 -> makespan 9: 5 -> slot A, 4 -> slot B,
  // 3 -> B(7), 3 -> A(8), 3 -> B(10)? No: after 5|4, least loaded is B(4);
  // 3 -> B(7); next least is A(5); 3 -> A(8); least is B(7)... -> B(10).
  // Wait: loads 8 and 10 -> makespan 10? Recompute: sorted {5,4,3,3,3}.
  // 5->A(5), 4->B(4), 3->B(7), 3->A(8), 3->B(10). Makespan 10.
  EXPECT_DOUBLE_EQ(ClusterModel::LptMakespan({3.0, 5.0, 3.0, 4.0, 3.0}, 2),
                   10.0);
}

TEST(LptMakespanTest, ZeroSlotsClampedToOne) {
  EXPECT_DOUBLE_EQ(ClusterModel::LptMakespan({1.0, 1.0}, 0), 2.0);
}

JobMetrics MakeJob(std::vector<double> map_secs,
                   std::vector<double> reduce_secs,
                   uint64_t reduce_in_bytes) {
  JobMetrics metrics;
  for (const double s : map_secs) {
    TaskMetrics t;
    t.busy_seconds = s;
    metrics.map_tasks.push_back(t);
  }
  for (const double s : reduce_secs) {
    TaskMetrics t;
    t.busy_seconds = s;
    t.input_bytes = reduce_in_bytes;
    metrics.reduce_tasks.push_back(t);
  }
  return metrics;
}

TEST(ClusterModelTest, JobMakespanComposition) {
  ClusterModel model;
  model.num_nodes = 2;
  model.map_slots_per_node = 1;
  model.reduce_slots_per_node = 1;
  model.job_startup_seconds = 10.0;
  model.task_startup_seconds = 1.0;
  model.network_bytes_per_second = 100.0;

  // 2 map tasks of 3s on 2 slots -> 4s with startup; 1 reduce of 5s -> 6s;
  // shuffle: 200 bytes / 100 Bps = 2s. Total = 10 + 4 + 2 + 6 = 22.
  const JobMetrics metrics = MakeJob({3.0, 3.0}, {5.0}, 200);
  EXPECT_DOUBLE_EQ(model.JobMakespan(metrics), 22.0);
}

TEST(ClusterModelTest, MoreReduceSlotsShortenReduceWave) {
  ClusterModel model;
  model.num_nodes = 1;
  model.reduce_slots_per_node = 1;
  model.job_startup_seconds = 0.0;
  model.task_startup_seconds = 0.0;
  model.network_bytes_per_second = 0.0;  // Disable shuffle accounting.
  const JobMetrics metrics = MakeJob({}, {4.0, 4.0, 4.0, 4.0}, 0);
  const double serial = model.JobMakespan(metrics);
  model.reduce_slots_per_node = 4;
  const double parallel = model.JobMakespan(metrics);
  EXPECT_DOUBLE_EQ(serial, 16.0);
  EXPECT_DOUBLE_EQ(parallel, 4.0);
}

TEST(ClusterModelTest, ShuffleBottleneckIsMaxReducerInbound) {
  ClusterModel model;
  model.num_nodes = 4;
  model.job_startup_seconds = 0.0;
  model.task_startup_seconds = 0.0;
  model.network_bytes_per_second = 1000.0;
  JobMetrics metrics = MakeJob({}, {0.0, 0.0}, 0);
  metrics.reduce_tasks[0].input_bytes = 5000;
  metrics.reduce_tasks[1].input_bytes = 1000;
  EXPECT_DOUBLE_EQ(model.JobMakespan(metrics), 5.0);
}

TEST(ClusterModelTest, PipelineSumsJobs) {
  ClusterModel model;
  model.job_startup_seconds = 7.0;
  model.task_startup_seconds = 0.0;
  model.network_bytes_per_second = 0.0;
  const JobMetrics a = MakeJob({1.0}, {}, 0);
  const JobMetrics b = MakeJob({2.0}, {}, 0);
  EXPECT_DOUBLE_EQ(model.PipelineMakespan({a, b}), 7.0 + 1.0 + 7.0 + 2.0);
}

TEST(ClusterModelTest, DefaultsMatchPaperCluster) {
  const ClusterModel model;
  EXPECT_EQ(model.num_nodes, 13);
  EXPECT_DOUBLE_EQ(model.network_bytes_per_second, 100e6 / 8.0);
}

}  // namespace
}  // namespace skymr::mr
