#include "src/common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (wave + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructionWithPendingWorkCompletesStartedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, 64, [&hits](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

}  // namespace
}  // namespace skymr
