#include "src/common/math_util.h"

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(CheckedPowTest, SmallValues) {
  EXPECT_EQ(CheckedPow(2, 10).value(), 1024u);
  EXPECT_EQ(CheckedPow(3, 4).value(), 81u);
  EXPECT_EQ(CheckedPow(10, 0).value(), 1u);
  EXPECT_EQ(CheckedPow(0, 5).value(), 0u);
  EXPECT_EQ(CheckedPow(0, 0).value(), 1u);
  EXPECT_EQ(CheckedPow(1, 64).value(), 1u);
}

TEST(CheckedPowTest, DetectsOverflow) {
  EXPECT_FALSE(CheckedPow(2, 64).has_value());
  EXPECT_FALSE(CheckedPow(1u << 31, 3).has_value());
  EXPECT_TRUE(CheckedPow(2, 63).has_value());
}

TEST(PowU64Test, MatchesCheckedPowInRange) {
  for (uint64_t base = 1; base <= 7; ++base) {
    for (uint32_t exp = 0; exp <= 10; ++exp) {
      EXPECT_EQ(PowU64(base, exp), CheckedPow(base, exp).value());
    }
  }
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 10), 1u);
  EXPECT_EQ(CeilDiv(0, 7), 0u);
}

TEST(FloorRootTest, ExactPowers) {
  EXPECT_EQ(FloorRoot(1024, 2), 32u);
  EXPECT_EQ(FloorRoot(1000000, 2), 1000u);
  EXPECT_EQ(FloorRoot(59049, 10), 3u);  // 3^10
  EXPECT_EQ(FloorRoot(1, 5), 1u);
}

TEST(FloorRootTest, NonExactRoundsDown) {
  EXPECT_EQ(FloorRoot(1023, 2), 31u);
  EXPECT_EQ(FloorRoot(2000000, 10), 4u);  // 4^10 = 1048576 <= 2e6 < 5^10
  EXPECT_EQ(FloorRoot(100000, 5), 10u);   // 10^5 = 1e5
  EXPECT_EQ(FloorRoot(99999, 5), 9u);
}

TEST(FloorRootTest, DegenerateInputs) {
  EXPECT_EQ(FloorRoot(0, 3), 0u);
  EXPECT_EQ(FloorRoot(7, 0), 0u);
  EXPECT_EQ(FloorRoot(7, 1), 7u);
}

TEST(FloorRootTest, PropertyHolds) {
  // n = FloorRoot(c, d) satisfies n^d <= c < (n+1)^d.
  for (uint64_t c : {5u, 100u, 4096u, 100000u, 123456u}) {
    for (uint32_t d = 1; d <= 8; ++d) {
      const uint64_t n = FloorRoot(c, d);
      EXPECT_LE(CheckedPow(n, d).value(), c) << "c=" << c << " d=" << d;
      const auto upper = CheckedPow(n + 1, d);
      ASSERT_TRUE(upper.has_value());
      EXPECT_GT(*upper, c) << "c=" << c << " d=" << d;
    }
  }
}

}  // namespace
}  // namespace skymr
