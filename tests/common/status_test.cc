#include "src/common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("dimension must be >= 1");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: dimension must be >= 1");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("key");
  EXPECT_EQ(os.str(), "NOT_FOUND: key");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::NotFound("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v->size(), 5u);
}

Status FailsThenPropagates() {
  SKYMR_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kInternal);
}

Status SucceedsThrough() {
  SKYMR_RETURN_IF_ERROR(Status::OK());
  return Status::NotFound("fell through");
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  EXPECT_EQ(SucceedsThrough().code(), StatusCode::kNotFound);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
}

}  // namespace
}  // namespace skymr
