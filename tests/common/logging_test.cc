#include "src/common/logging.h"

#include <iostream>
#include <sstream>

#include <gtest/gtest.h>

namespace skymr {
namespace {

/// Captures std::cerr for the lifetime of the object.
class CerrCapture {
 public:
  CerrCapture() : old_buf_(std::cerr.rdbuf(stream_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_buf_); }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  std::streambuf* old_buf_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_level_); }
  LogLevel previous_level_;
};

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  SetLogLevel(LogLevel::kInfo);
  CerrCapture capture;
  SKYMR_LOG(INFO) << "visible message";
  SKYMR_LOG(WARNING) << "also visible";
  EXPECT_NE(capture.str().find("visible message"), std::string::npos);
  EXPECT_NE(capture.str().find("also visible"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  SetLogLevel(LogLevel::kWarning);
  CerrCapture capture;
  SKYMR_LOG(INFO) << "should not appear";
  SKYMR_LOG(DEBUG) << "nor this";
  EXPECT_EQ(capture.str(), "");
}

TEST_F(LoggingTest, SuppressedStatementsDoNotEvaluateStreamArgs) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  SKYMR_LOG(INFO) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  CerrCapture capture;
  SKYMR_LOG(ERROR) << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MessageIncludesLevelAndLocation) {
  SetLogLevel(LogLevel::kDebug);
  CerrCapture capture;
  SKYMR_LOG(WARNING) << "tagged";
  const std::string out = capture.str();
  EXPECT_NE(out.find("[W "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc:"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesThrough) {
  SKYMR_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST_F(LoggingTest, CheckFailureAborts) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_DEATH({ SKYMR_CHECK(false) << "boom"; }, "Check failed");
}

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

}  // namespace
}  // namespace skymr
