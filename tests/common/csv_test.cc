#include "src/common/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(CsvParseTest, SimpleFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParseTest, EmptyFields) {
  EXPECT_EQ(ParseCsvLine(",,"), (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvParseTest, EscapedQuotes) {
  EXPECT_EQ(ParseCsvLine("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvParseTest, TrailingCarriageReturnDropped) {
  EXPECT_EQ(ParseCsvLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvFormatTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

TEST(CsvFormatTest, RoundTripsThroughParse) {
  const std::vector<std::string> fields{"plain", "with,comma",
                                        "with \"quote\"", ""};
  EXPECT_EQ(ParseCsvLine(FormatCsvLine(fields)), fields);
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skymr_csv_test.csv")
          .string();
  const std::vector<std::vector<std::string>> rows{
      {"x", "y"}, {"1.5", "2.5"}, {"a,b", "c"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  const auto result = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvFileTest, WriteToBadPathIsIoError) {
  const Status s = WriteCsvFile("/nonexistent/dir/file.csv", {{"a"}});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CsvFileTest, SkipsEmptyLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skymr_csv_empty.csv")
          .string();
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n\n\nc,d\n", f);
    std::fclose(f);
  }
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[1], (std::vector<std::string>{"c", "d"}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skymr
