#include "src/common/dynamic_bitset.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace skymr {
namespace {

TEST(DynamicBitsetTest, ConstructionAllClear) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  EXPECT_FALSE(bits.All());
  for (size_t i = 0; i < bits.size(); ++i) {
    EXPECT_FALSE(bits.Test(i));
  }
}

TEST(DynamicBitsetTest, SetResetAssign) {
  DynamicBitset bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  bits.Assign(63, true);
  EXPECT_TRUE(bits.Test(63));
  bits.Assign(63, false);
  EXPECT_FALSE(bits.Test(63));
}

TEST(DynamicBitsetTest, FromStringRoundTrip) {
  // The paper's Figure 2 bitstring.
  const std::string text = "011110100";
  const DynamicBitset bits = DynamicBitset::FromString(text);
  EXPECT_EQ(bits.size(), 9u);
  EXPECT_EQ(bits.Count(), 5u);
  EXPECT_EQ(bits.ToString(), text);
  EXPECT_FALSE(bits.Test(0));
  EXPECT_TRUE(bits.Test(1));
  EXPECT_TRUE(bits.Test(6));
  EXPECT_FALSE(bits.Test(8));
}

TEST(DynamicBitsetTest, FillAndAll) {
  DynamicBitset bits(70);
  bits.Fill();
  EXPECT_TRUE(bits.All());
  EXPECT_EQ(bits.Count(), 70u);
  // Tail bits beyond size must stay zero so Count is exact.
  bits.Clear();
  EXPECT_TRUE(bits.None());
}

TEST(DynamicBitsetTest, FindFirstNextLast) {
  DynamicBitset bits(200);
  EXPECT_EQ(bits.FindFirst(), 200u);
  EXPECT_EQ(bits.FindLast(), 200u);
  bits.Set(5);
  bits.Set(64);
  bits.Set(199);
  EXPECT_EQ(bits.FindFirst(), 5u);
  EXPECT_EQ(bits.FindNext(5), 64u);
  EXPECT_EQ(bits.FindNext(64), 199u);
  EXPECT_EQ(bits.FindNext(199), 200u);
  EXPECT_EQ(bits.FindLast(), 199u);
}

TEST(DynamicBitsetTest, FindNextFromUnsetPosition) {
  DynamicBitset bits(128);
  bits.Set(100);
  EXPECT_EQ(bits.FindNext(0), 100u);
  EXPECT_EQ(bits.FindNext(99), 100u);
  EXPECT_EQ(bits.FindNext(100), 128u);
  EXPECT_EQ(bits.FindNext(127), 128u);
}

TEST(DynamicBitsetTest, IterationOrderAscending) {
  DynamicBitset bits(150);
  const std::vector<size_t> expected = {3, 64, 65, 127, 128, 149};
  for (const size_t i : expected) {
    bits.Set(i);
  }
  std::vector<size_t> seen;
  bits.ForEachSetBit([&seen](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitsetTest, OrMergesLikeAlgorithm2) {
  // BS_R = BS_R1 | BS_R2 | ... (Section 3.2).
  DynamicBitset a = DynamicBitset::FromString("0101");
  const DynamicBitset b = DynamicBitset::FromString("0011");
  a |= b;
  EXPECT_EQ(a.ToString(), "0111");
}

TEST(DynamicBitsetTest, AndAndAndNot) {
  DynamicBitset a = DynamicBitset::FromString("1100");
  const DynamicBitset b = DynamicBitset::FromString("1010");
  DynamicBitset c = a;
  c &= b;
  EXPECT_EQ(c.ToString(), "1000");
  a.AndNot(b);
  EXPECT_EQ(a.ToString(), "0100");
}

TEST(DynamicBitsetTest, EqualityAndCopy) {
  DynamicBitset a(77);
  a.Set(3);
  a.Set(76);
  DynamicBitset b = a;
  EXPECT_EQ(a, b);
  b.Reset(76);
  EXPECT_NE(a, b);
}

TEST(DynamicBitsetTest, FromWordsRespectsTailTrim) {
  // Words may carry garbage above `size`; FromWords must trim.
  std::vector<uint64_t> words = {~uint64_t{0}};
  const DynamicBitset bits = DynamicBitset::FromWords(10, std::move(words));
  EXPECT_EQ(bits.Count(), 10u);
  EXPECT_TRUE(bits.All());
}

TEST(DynamicBitsetTest, EmptyBitset) {
  DynamicBitset bits;
  EXPECT_TRUE(bits.empty());
  EXPECT_TRUE(bits.None());
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_EQ(bits.FindFirst(), 0u);
}

TEST(DynamicBitsetTest, RandomizedAgainstReference) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t size = 1 + rng.NextBounded(300);
    DynamicBitset bits(size);
    std::vector<bool> reference(size, false);
    for (int op = 0; op < 200; ++op) {
      const size_t i = rng.NextBounded(size);
      if (rng.NextBounded(2) == 0) {
        bits.Set(i);
        reference[i] = true;
      } else {
        bits.Reset(i);
        reference[i] = false;
      }
    }
    size_t expected_count = 0;
    for (size_t i = 0; i < size; ++i) {
      EXPECT_EQ(bits.Test(i), reference[i]);
      expected_count += reference[i] ? 1 : 0;
    }
    EXPECT_EQ(bits.Count(), expected_count);
  }
}

}  // namespace
}  // namespace skymr
