#include "src/common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedResets) {
  Rng rng(9);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(9);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.25);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(7);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  int counts[kBound] = {};
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = rng.NextBounded(kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  // Each bucket should hold ~10% of samples; allow generous slack.
  for (const int c : counts) {
    EXPECT_GT(c, kSamples / kBound * 0.9);
    EXPECT_LT(c, kSamples / kBound * 1.1);
  }
}

TEST(RngTest, NextBoundedOne) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(12);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.Gaussian(5.0, 2.0);
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.05);
}

TEST(RngTest, DoubleStreamHasNoShortCycle) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(rng.NextU64());
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace skymr
