// Concurrency stress for ThreadPool and ParallelFor. These tests encode
// the pool's contract (thread_pool.h) under contention and are most
// meaningful in the SKYMR_SANITIZE=thread configuration:
//
//   cmake -B build-tsan -S . -DSKYMR_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L concurrency
//
// Regression background: the original ParallelFor waited via pool-wide
// WaitIdle, so (a) a nested call deadlocked — the waiting task counted as
// active forever — (b) concurrent callers waited on each other's tasks,
// and (c) an exception in a body escaped the worker loop and terminated
// the process. The tests below pin down all three behaviours.

#include "src/common/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(ThreadPoolStressTest, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 500;
  std::atomic<int> counter{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksPerSubmitter);
}

TEST(ThreadPoolStressTest, SubmittersRacingWaitIdle) {
  // WaitIdle may run concurrently with Submit from other threads; it only
  // promises that tasks submitted *before* it started are done when it
  // returns. The test checks nothing is lost or double-run in the race.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::atomic<bool> stop{false};

  std::thread submitter([&] {
    for (int i = 0; i < 2000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    stop.store(true);
  });
  while (!stop.load()) {
    pool.WaitIdle();
  }
  submitter.join();
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2000);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForCallsAreIndependent) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  static constexpr int kCount = 200;
  std::vector<std::atomic<int>> totals(kCallers);

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &totals, c] {
      ParallelFor(&pool, kCount,
                  [&totals, c](int) { totals[c].fetch_add(1); });
      // Per-call completion: by the time ParallelFor returns, *this*
      // caller's indices all ran, regardless of the other callers.
      EXPECT_EQ(totals[c].load(), kCount);
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
}

TEST(ThreadPoolStressTest, NestedParallelFor) {
  ThreadPool pool(4);
  constexpr int kOuter = 16;
  constexpr int kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);

  ParallelFor(&pool, kOuter, [&pool, &hits](int i) {
    ParallelFor(&pool, kInner, [&hits, i](int j) {
      hits[i * kInner + j].fetch_add(1);
    });
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolStressTest, NestedParallelForOnSingleThreadPool) {
  // The hardest case for work-helping: one worker, three nesting levels.
  // The waiting thread must drain the queue itself or this deadlocks.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  ParallelFor(&pool, 4, [&pool, &leaves](int) {
    ParallelFor(&pool, 4, [&pool, &leaves](int) {
      ParallelFor(&pool, 4, [&leaves](int) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(ThreadPoolStressTest, ExceptionInBodyIsRethrownAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    ParallelFor(&pool, 100, [&ran](int i) {
      ran.fetch_add(1);
      if (i == 37) {
        throw std::runtime_error("index 37 failed");
      }
    });
    FAIL() << "ParallelFor should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "index 37 failed");
  }
  // Every index ran despite the failure, and the pool is still usable.
  EXPECT_EQ(ran.load(), 100);
  std::atomic<int> after{0};
  ParallelFor(&pool, 50, [&after](int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolStressTest, ExceptionPropagatesThroughNestedParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> outer_done{0};
  EXPECT_THROW(
      ParallelFor(&pool, 8,
                  [&pool, &outer_done](int i) {
                    ParallelFor(&pool, 8, [i](int j) {
                      if (i == 3 && j == 5) {
                        throw std::logic_error("nested failure");
                      }
                    });
                    outer_done.fetch_add(1);
                  }),
      std::logic_error);
  // Outer indices other than the failing one completed normally.
  EXPECT_EQ(outer_done.load(), 7);
}

TEST(ThreadPoolStressTest, MixedSubmitAndParallelForFromTasks) {
  // Tasks themselves submit work and run ParallelFor while outside
  // threads do the same — the access pattern of the MR engine's map wave
  // with per-task retries.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kRounds = 20;

  for (int round = 0; round < kRounds; ++round) {
    pool.Submit([&pool, &counter] {
      pool.Submit([&counter] { counter.fetch_add(1); });
      ParallelFor(&pool, 10, [&counter](int) { counter.fetch_add(1); });
    });
    ParallelFor(&pool, 5, [&counter](int) { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), kRounds * (1 + 10 + 5));
}

TEST(ThreadPoolStressTest, RepeatedWavesKeepPoolConsistent) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int wave = 0; wave < 50; ++wave) {
    ParallelFor(&pool, 64, [&total](int i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 50L * (63 * 64 / 2));
}

}  // namespace
}  // namespace skymr
