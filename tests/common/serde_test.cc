#include "src/common/serde.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/local/skyline_window.h"

namespace skymr {
namespace {

template <typename T>
T RoundTrip(const T& value) {
  return DeserializeFromBytes<T>(SerializeToBytes(value));
}

TEST(SerdeTest, Arithmetic) {
  EXPECT_EQ(RoundTrip<int>(-42), -42);
  EXPECT_EQ(RoundTrip<uint64_t>(uint64_t{1} << 63), uint64_t{1} << 63);
  EXPECT_DOUBLE_EQ(RoundTrip<double>(3.14159), 3.14159);
  EXPECT_EQ(RoundTrip<bool>(true), true);
  EXPECT_EQ(RoundTrip<char>('x'), 'x');
}

TEST(SerdeTest, String) {
  EXPECT_EQ(RoundTrip<std::string>(""), "");
  EXPECT_EQ(RoundTrip<std::string>("hello world"), "hello world");
  const std::string binary("\x00\x01\xffz", 4);
  EXPECT_EQ(RoundTrip(binary), binary);
}

TEST(SerdeTest, Pair) {
  const std::pair<int, std::string> p{7, "seven"};
  EXPECT_EQ(RoundTrip(p), p);
}

TEST(SerdeTest, VectorOfTrivial) {
  const std::vector<double> v{1.0, -2.5, 1e300};
  EXPECT_EQ(RoundTrip(v), v);
  EXPECT_EQ(RoundTrip(std::vector<int>{}), std::vector<int>{});
}

TEST(SerdeTest, VectorOfStrings) {
  const std::vector<std::string> v{"a", "", "long string with spaces"};
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(SerdeTest, NestedVectors) {
  const std::vector<std::vector<uint32_t>> v{{1, 2}, {}, {3}};
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(SerdeTest, DynamicBitset) {
  DynamicBitset bits(131);
  bits.Set(0);
  bits.Set(64);
  bits.Set(130);
  const DynamicBitset round = RoundTrip(bits);
  EXPECT_EQ(round, bits);
  EXPECT_EQ(round.size(), 131u);
}

TEST(SerdeTest, SkylineWindow) {
  SkylineWindow window(2);
  const double a[] = {0.5, 0.4};
  const double b[] = {0.1, 0.9};
  window.Insert(a, 10, nullptr);
  window.Insert(b, 20, nullptr);
  const SkylineWindow round = RoundTrip(window);
  EXPECT_EQ(round, window);
  EXPECT_EQ(round.dim(), 2u);
  EXPECT_EQ(round.size(), 2u);
}

TEST(SerdeTest, SerializedByteSizeMatchesBuffer) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(SerializedByteSize(v), SerializeToBytes(v).size());
  EXPECT_EQ(SerializedByteSize(v), sizeof(uint64_t) + 3 * sizeof(double));
}

TEST(SerdeTest, SequentialReadsFromOneBuffer) {
  ByteSink sink;
  Serde<int>::Write(1, &sink);
  Serde<std::string>::Write("two", &sink);
  Serde<double>::Write(3.0, &sink);
  ByteSource source(sink.buffer());
  EXPECT_EQ(Serde<int>::Read(&source), 1);
  EXPECT_EQ(Serde<std::string>::Read(&source), "two");
  EXPECT_DOUBLE_EQ(Serde<double>::Read(&source), 3.0);
  EXPECT_TRUE(source.AtEnd());
}

TEST(SerdeTest, SkylineWindowByteSizeIsExact) {
  SkylineWindow window(3);
  const double a[] = {0.5, 0.4, 0.3};
  window.Insert(a, 1, nullptr);
  EXPECT_EQ(window.ByteSize(), SerializeToBytes(window).size());
}

TEST(SerdeTest, RawReadPastEndThrowsInEveryBuildMode) {
  const std::vector<uint8_t> bytes{1, 2, 3};
  ByteSource source(bytes);
  EXPECT_EQ(source.ReadRaw<uint8_t>(), 1u);
  EXPECT_THROW(source.ReadRaw<uint64_t>(), SerdeUnderflow);
  // A failed read consumes nothing: the source stays usable.
  EXPECT_EQ(source.remaining(), 2u);
  EXPECT_EQ(source.ReadRaw<uint8_t>(), 2u);
}

TEST(SerdeTest, TruncatedStringThrowsInsteadOfAllocating) {
  // A corrupt length prefix must neither read out of bounds nor trigger
  // a giant allocation before the bounds check.
  ByteSink sink;
  Serde<std::string>::Write("hello world", &sink);
  for (const size_t keep : {0u, 4u, 8u, 12u}) {
    ByteSource truncated(sink.data(), std::min(keep, sink.size()));
    EXPECT_THROW(Serde<std::string>::Read(&truncated), SerdeUnderflow)
        << "keep=" << keep;
  }
}

TEST(SerdeTest, TruncatedVectorThrows) {
  ByteSink sink;
  Serde<std::vector<double>>::Write({1.0, 2.0, 3.0}, &sink);
  for (size_t keep = 0; keep < sink.size(); keep += 5) {
    ByteSource truncated(sink.data(), keep);
    EXPECT_THROW(Serde<std::vector<double>>::Read(&truncated),
                 SerdeUnderflow)
        << "keep=" << keep;
  }
  // Nested (non-trivial element) vectors underflow on the element reads.
  ByteSink nested;
  Serde<std::vector<std::string>>::Write({"aa", "bb"}, &nested);
  ByteSource truncated(nested.data(), nested.size() - 1);
  EXPECT_THROW(Serde<std::vector<std::string>>::Read(&truncated),
               SerdeUnderflow);
}

TEST(SerdeTest, LengthPrefixBombRejectedBeforeAllocating) {
  // A claimed element count whose byte size overflows (or vastly exceeds
  // the remaining input) must be rejected by the length check up front —
  // not by attempting a multi-exabyte allocation. count * sizeof(double)
  // for 2^61 elements wraps a 64-bit size, the classic overflow shape.
  ByteSink sink;
  sink.AppendRaw<uint64_t>(uint64_t{1} << 61);
  sink.AppendRaw<double>(1.0);  // A sliver of "payload" after the bomb.
  ByteSource source(sink.data(), sink.size());
  EXPECT_THROW(Serde<std::vector<double>>::Read(&source), SerdeUnderflow);

  // Same bomb against the string decoder (element size 1, no multiply
  // overflow — the remaining-bytes bound alone must reject it).
  ByteSink str_sink;
  str_sink.AppendRaw<uint64_t>(uint64_t{1} << 61);
  ByteSource str_source(str_sink.data(), str_sink.size());
  EXPECT_THROW(Serde<std::string>::Read(&str_source), SerdeUnderflow);
}

TEST(SerdeTest, WindowShapeMismatchThrows) {
  // A window payload that decodes field-by-field but whose row count and
  // value count disagree would make every RowAt an out-of-bounds read;
  // the decoder must reject it like a truncation. Claim 2 ids but ship
  // values for a single 2-d row.
  ByteSink sink;
  sink.AppendRaw<uint64_t>(2);  // dim
  Serde<std::vector<TupleId>>::Write({7, 8}, &sink);
  Serde<std::vector<double>>::Write({0.25, 0.75}, &sink);
  ByteSource source(sink.data(), sink.size());
  EXPECT_THROW(Serde<SkylineWindow>::Read(&source), SerdeUnderflow);

  // dim == 0 with non-empty values is the other inconsistent shape.
  ByteSink zero_dim;
  zero_dim.AppendRaw<uint64_t>(0);
  Serde<std::vector<TupleId>>::Write({1}, &zero_dim);
  Serde<std::vector<double>>::Write({0.5}, &zero_dim);
  ByteSource zero_source(zero_dim.data(), zero_dim.size());
  EXPECT_THROW(Serde<SkylineWindow>::Read(&zero_source), SerdeUnderflow);
}

TEST(SerdeTest, TruncatedBitsetAndWindowThrow) {
  DynamicBitset bits(200);
  bits.Set(199);
  ByteSink sink;
  Serde<DynamicBitset>::Write(bits, &sink);
  ByteSource truncated(sink.data(), sink.size() - sizeof(uint64_t));
  EXPECT_THROW(Serde<DynamicBitset>::Read(&truncated), SerdeUnderflow);

  SkylineWindow window(2);
  const double a[] = {0.5, 0.4};
  window.Insert(a, 1, nullptr);
  ByteSink wsink;
  Serde<SkylineWindow>::Write(window, &wsink);
  ByteSource wtruncated(wsink.data(), wsink.size() - 1);
  EXPECT_THROW(Serde<SkylineWindow>::Read(&wtruncated), SerdeUnderflow);
}

}  // namespace
}  // namespace skymr
