// Session API tests (DESIGN.md §17): a resident skymr::Session must
// answer QuerySpecs bit-identically to the one-shot ComputeSkyline shim,
// share the bitstring phase across queries via the fingerprint-keyed
// cache (single-flight under concurrency), respect the two-lane
// admission bounds, and never serve a stale phase when the dataset or
// the bounds policy changes.

#include "src/serve/session.h"

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/checkpoint.h"
#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/obs/bench_artifact.h"
#include "src/relation/skyline_verify.h"
#include "src/serve/query_spec.h"

namespace skymr {
namespace {

Dataset MakeData(uint32_t cardinality, uint32_t dim, uint64_t seed) {
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kIndependent;
  gen.cardinality = cardinality;
  gen.dim = dim;
  gen.seed = seed;
  return std::move(data::Generate(gen)).value();
}

SessionOptions BaseOptions() {
  SessionOptions options;
  options.engine.num_map_tasks = 3;
  options.engine.num_reducers = 3;
  options.ppd.max_candidate = 6;  // Keep candidate sweeps cheap in tests.
  return options;
}

/// The RunnerConfig equivalent of BaseOptions() + a QuerySpec, for
/// parity checks against the legacy one-shot entry point.
RunnerConfig LegacyConfig(const QuerySpec& spec) {
  RunnerConfig config;
  config.algorithm = spec.algorithm;
  config.local_algorithm = spec.local_algorithm;
  // lint:allow(deprecated-constraint) parity test drives the legacy shim
  config.constraint = spec.constraint;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 3;
  config.ppd.max_candidate = 6;
  return config;
}

std::vector<TupleId> SortedIds(const SkylineResult& result) {
  std::vector<TupleId> ids = result.SkylineIds();
  std::sort(ids.begin(), ids.end());
  return ids;
}

Box MiddleBox(uint32_t dim) {
  Box box;
  box.lo.assign(dim, 0.0);
  box.hi.assign(dim, 0.6);
  return box;
}

/// A mixed workload: both grid algorithms, a constrained query, and a
/// baseline with no bitstring phase.
std::vector<QuerySpec> MixedSpecs(uint32_t dim) {
  std::vector<QuerySpec> specs;
  QuerySpec gpsrs;
  gpsrs.algorithm = Algorithm::kMrGpsrs;
  specs.push_back(gpsrs);
  QuerySpec gpmrs;
  gpmrs.algorithm = Algorithm::kMrGpmrs;
  specs.push_back(gpmrs);
  QuerySpec constrained;
  constrained.algorithm = Algorithm::kMrGpmrs;
  constrained.constraint = MiddleBox(dim);
  specs.push_back(constrained);
  QuerySpec baseline;
  baseline.algorithm = Algorithm::kMrBnl;
  specs.push_back(baseline);
  return specs;
}

// ---------------------------------------------------------------------
// Parity with the one-shot shim
// ---------------------------------------------------------------------

TEST(SessionTest, CacheDisabledSubmitMatchesComputeSkylineExactly) {
  const Dataset data = MakeData(1500, 3, 71);
  SessionOptions options = BaseOptions();
  options.cache = false;  // full pipeline per query, like the shim
  auto session = Session::Open(data, options);
  ASSERT_TRUE(session.ok()) << session.status();

  for (const QuerySpec& spec : MixedSpecs(data.dim())) {
    auto served = (*session)->Submit(spec);
    ASSERT_TRUE(served.ok()) << served.status();
    auto direct = ComputeSkyline(data, LegacyConfig(spec));
    ASSERT_TRUE(direct.ok()) << direct.status();
    // Bit-identical down to every deterministic counter, not just ids.
    EXPECT_EQ(SortedIds(*served), SortedIds(*direct));
    EXPECT_EQ(obs::DeterministicCounters(*served, data.size(), false),
              obs::DeterministicCounters(*direct, data.size(), false));
  }
  EXPECT_EQ((*session)->stats().cache_hits, 0);
  EXPECT_EQ((*session)->stats().cache_misses, 0);
}

TEST(SessionTest, CachedSessionAnswersMixBitIdenticalToIndependentRuns) {
  const Dataset data = MakeData(2000, 3, 72);
  auto session = Session::Open(data, BaseOptions());
  ASSERT_TRUE(session.ok()) << session.status();

  const std::vector<QuerySpec> specs = MixedSpecs(data.dim());
  for (const QuerySpec& spec : specs) {
    SubmitInfo info;
    auto served = (*session)->Submit(spec, &info);
    ASSERT_TRUE(served.ok()) << served.status();
    auto direct = ComputeSkyline(data, LegacyConfig(spec));
    ASSERT_TRUE(direct.ok()) << direct.status();
    EXPECT_EQ(SortedIds(*served), SortedIds(*direct));
    EXPECT_EQ(served->skyline.size(), direct->skyline.size());
    EXPECT_EQ(served->ppd, direct->ppd);
    EXPECT_EQ(served->nonempty_partitions, direct->nonempty_partitions);
    EXPECT_EQ(served->pruned_partitions, direct->pruned_partitions);
    EXPECT_EQ(info.cache_hit, served->session_cache_hit);
  }
  // gpsrs leads the shared unconstrained fingerprint, gpmrs hits it;
  // the constrained query is its own fingerprint; the baseline never
  // touches the bitstring cache.
  const SessionStats stats = (*session)->stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(specs.size()));
  EXPECT_EQ(stats.completed, static_cast<int64_t>(specs.size()));
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.cache_hits, 1);
}

// ---------------------------------------------------------------------
// Cache semantics
// ---------------------------------------------------------------------

TEST(SessionTest, CacheHitSkipsBitstringJobAndMatchesColdResult) {
  const Dataset data = MakeData(1800, 3, 73);
  auto session = Session::Open(data, BaseOptions());
  ASSERT_TRUE(session.ok()) << session.status();

  QuerySpec spec;
  spec.algorithm = Algorithm::kMrGpsrs;
  auto cold = (*session)->Submit(spec);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->session_cache_hit);
  EXPECT_EQ(cold->jobs.size(), 2u);  // bitstring + skyline

  SubmitInfo info;
  auto warm = (*session)->Submit(spec, &info);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->session_cache_hit);
  EXPECT_TRUE(info.cache_hit);
  EXPECT_EQ(warm->jobs.size(), 1u);  // bitstring phase served from cache

  // The cached phase must reproduce the cold run exactly.
  EXPECT_EQ(SortedIds(*warm), SortedIds(*cold));
  EXPECT_EQ(warm->ppd, cold->ppd);
  EXPECT_EQ(warm->nonempty_partitions, cold->nonempty_partitions);
  EXPECT_EQ(warm->pruned_partitions, cold->pruned_partitions);
  EXPECT_EQ(ExplainSkylineMismatch(data, warm->SkylineIds()), "");
}

TEST(SessionTest, UnconstrainedPhaseSharedAcrossAlgorithms) {
  const Dataset data = MakeData(1500, 3, 74);
  auto session = Session::Open(data, BaseOptions());
  ASSERT_TRUE(session.ok()) << session.status();

  QuerySpec gpsrs;
  gpsrs.algorithm = Algorithm::kMrGpsrs;
  QuerySpec gpmrs;
  gpmrs.algorithm = Algorithm::kMrGpmrs;
  ASSERT_TRUE((*session)->Submit(gpsrs).ok());
  auto second = (*session)->Submit(gpmrs);
  ASSERT_TRUE(second.ok()) << second.status();
  // The phase depends on dataset+grid policy, never on the skyline
  // algorithm, so the gpmrs query rides the gpsrs-built phase.
  EXPECT_TRUE(second->session_cache_hit);
  EXPECT_EQ((*session)->stats().cache_misses, 1);
  EXPECT_EQ((*session)->stats().cache_hits, 1);
}

TEST(SessionTest, ConstraintBoxChangesFingerprint) {
  const Dataset data = MakeData(1500, 3, 75);
  auto session = Session::Open(data, BaseOptions());
  ASSERT_TRUE(session.ok()) << session.status();

  QuerySpec plain;
  plain.algorithm = Algorithm::kMrGpmrs;
  QuerySpec constrained = plain;
  constrained.constraint = MiddleBox(data.dim());
  ASSERT_TRUE((*session)->Submit(plain).ok());
  auto first_constrained = (*session)->Submit(constrained);
  ASSERT_TRUE(first_constrained.ok());
  EXPECT_FALSE(first_constrained->session_cache_hit);
  auto second_constrained = (*session)->Submit(constrained);
  ASSERT_TRUE(second_constrained.ok());
  EXPECT_TRUE(second_constrained->session_cache_hit);
  EXPECT_EQ(SortedIds(*first_constrained), SortedIds(*second_constrained));
  EXPECT_EQ((*session)->stats().cache_misses, 2);
  EXPECT_EQ((*session)->stats().cache_hits, 1);
}

TEST(SessionTest, WarmupPrimesCacheSoFirstSubmitHits) {
  const Dataset data = MakeData(1500, 3, 76);
  auto session = Session::Open(data, BaseOptions());
  ASSERT_TRUE(session.ok()) << session.status();

  QuerySpec spec;
  spec.algorithm = Algorithm::kMrGpsrs;
  ASSERT_TRUE((*session)->Warmup(spec).ok());
  EXPECT_EQ((*session)->stats().cache_misses, 1);
  EXPECT_EQ((*session)->stats().submitted, 0);  // warmup is off-ledger

  auto result = (*session)->Submit(spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->session_cache_hit);
  EXPECT_EQ(result->jobs.size(), 1u);
  EXPECT_EQ(ExplainSkylineMismatch(data, result->SkylineIds()), "");

  // Warming a baseline is a no-op: there is no bitstring phase to keep.
  QuerySpec bnl;
  bnl.algorithm = Algorithm::kMrBnl;
  ASSERT_TRUE((*session)->Warmup(bnl).ok());
  EXPECT_EQ((*session)->stats().cache_misses, 1);
}

// ---------------------------------------------------------------------
// Fingerprint discipline across sessions (external checkpoint store)
// ---------------------------------------------------------------------

TEST(SessionTest, FingerprintMissesWhenDatasetOrBoundsChange) {
  const Dataset data_a = MakeData(1200, 3, 77);
  const Dataset data_b = MakeData(1200, 3, 78);  // same shape, new content
  core::PipelineCheckpoint checkpoint;
  SessionOptions options = BaseOptions();
  options.checkpoint = &checkpoint;

  QuerySpec spec;
  spec.algorithm = Algorithm::kMrGpsrs;

  // Session over A stores its phase in the shared checkpoint.
  {
    auto session = Session::Open(data_a, options);
    ASSERT_TRUE(session.ok()) << session.status();
    auto result = (*session)->Submit(spec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->resumed_from_checkpoint);
    EXPECT_EQ(checkpoint.size(), 1u);
  }
  // A fresh session over the SAME dataset resumes from it...
  {
    auto session = Session::Open(data_a, options);
    ASSERT_TRUE(session.ok()) << session.status();
    auto result = (*session)->Submit(spec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->resumed_from_checkpoint);
    EXPECT_EQ(result->jobs.size(), 1u);
  }
  // ...but a different dataset must miss, never resume stale state.
  {
    auto session = Session::Open(data_b, options);
    ASSERT_TRUE(session.ok()) << session.status();
    auto result = (*session)->Submit(spec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->resumed_from_checkpoint);
    EXPECT_EQ(checkpoint.size(), 2u);
    EXPECT_EQ(ExplainSkylineMismatch(data_b, result->SkylineIds()), "");
  }
  // ...and so must the same dataset under a different bounds policy.
  {
    SessionOptions computed_bounds = options;
    computed_bounds.unit_bounds = false;
    auto session = Session::Open(data_a, computed_bounds);
    ASSERT_TRUE(session.ok()) << session.status();
    auto result = (*session)->Submit(spec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->resumed_from_checkpoint);
    EXPECT_EQ(checkpoint.size(), 3u);
  }
}

// ---------------------------------------------------------------------
// Concurrency: single-flight cache and admission bounds
// ---------------------------------------------------------------------

TEST(SessionTest, ConcurrentSubmitSingleFlightMissesOncePerFingerprint) {
  const Dataset data = MakeData(1500, 3, 79);
  auto session = Session::Open(data, BaseOptions());
  ASSERT_TRUE(session.ok()) << session.status();

  // Serial references, from an independent cache-less session.
  SessionOptions reference_options = BaseOptions();
  reference_options.cache = false;
  auto reference = Session::Open(data, reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::vector<QuerySpec> specs = MixedSpecs(data.dim());
  std::vector<std::vector<TupleId>> expected;
  for (const QuerySpec& spec : specs) {
    auto result = (*reference)->Submit(spec);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(SortedIds(*result));
  }

  constexpr int kRounds = 4;
  const int total = kRounds * static_cast<int>(specs.size());
  std::vector<std::vector<TupleId>> got(total);
  std::vector<Status> failures(total, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(total);
  for (int i = 0; i < total; ++i) {
    threads.emplace_back([&, i] {
      auto result = (*session)->Submit(specs[i % specs.size()]);
      if (!result.ok()) {
        failures[i] = result.status();
        return;
      }
      got[i] = SortedIds(*result);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int i = 0; i < total; ++i) {
    ASSERT_TRUE(failures[i].ok()) << failures[i];
    EXPECT_EQ(got[i], expected[i % specs.size()]) << "query " << i;
  }
  // Single-flight: exactly one miss per distinct fingerprint (shared
  // unconstrained + constrained), no matter how the threads interleave.
  const SessionStats stats = (*session)->stats();
  EXPECT_EQ(stats.cache_misses, 2);
  // 3 grid queries per round touch the cache; 2 of the touches led.
  EXPECT_EQ(stats.cache_hits, kRounds * 3 - 2);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.errors, 0);
}

TEST(SessionTest, AdmissionSlotsBoundConcurrentInflight) {
  const Dataset data = MakeData(1200, 3, 80);
  SessionOptions options = BaseOptions();
  options.admission_slots = 2;
  auto session = Session::Open(data, options);
  ASSERT_TRUE(session.ok()) << session.status();

  QuerySpec spec;
  spec.algorithm = Algorithm::kMrGpsrs;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      auto result = (*session)->Submit(spec);
      ASSERT_TRUE(result.ok()) << result.status();
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const SessionStats stats = (*session)->stats();
  EXPECT_LE(stats.peak_inflight, 2);
  EXPECT_GE(stats.peak_inflight, 1);
  EXPECT_EQ(stats.completed, 8);
}

TEST(SessionTest, ReservedSlotsExcludeLargeQueries) {
  const Dataset data = MakeData(1200, 3, 81);
  SessionOptions options = BaseOptions();
  options.admission_slots = 3;
  options.small_reserved_slots = 2;  // large queries get one slot
  auto session = Session::Open(data, options);
  ASSERT_TRUE(session.ok()) << session.status();

  QuerySpec large;
  large.algorithm = Algorithm::kMrGpsrs;
  large.admission = AdmissionClass::kLarge;
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      SubmitInfo info;
      auto result = (*session)->Submit(large, &info);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_FALSE(info.small_lane);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Only one large query may run at a time: the other two slots are
  // reserved for the small lane, which this workload never uses.
  EXPECT_EQ((*session)->stats().peak_inflight, 1);
}

// ---------------------------------------------------------------------
// Options validation and the config split
// ---------------------------------------------------------------------

TEST(SessionTest, OpenRejectsInvalidOptions) {
  const Dataset data = MakeData(300, 2, 82);

  SessionOptions negative_slots = BaseOptions();
  negative_slots.admission_slots = -1;
  EXPECT_FALSE(Session::Open(data, negative_slots).ok());

  SessionOptions no_large_slot = BaseOptions();
  no_large_slot.admission_slots = 2;
  no_large_slot.small_reserved_slots = 2;
  EXPECT_FALSE(Session::Open(data, no_large_slot).ok());

  ThreadPool pool(2);
  SessionOptions contradicting_pool = BaseOptions();
  contradicting_pool.pool = &pool;
  contradicting_pool.engine.num_threads = 4;
  auto open = Session::Open(data, contradicting_pool);
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, SubmitRejectsInvalidQuerySpec) {
  const Dataset data = MakeData(300, 2, 83);
  auto session = Session::Open(data, BaseOptions());
  ASSERT_TRUE(session.ok()) << session.status();

  QuerySpec bad_box;
  bad_box.constraint = Box{};  // wrong dimensionality
  bad_box.constraint->lo = {0.0, 0.0, 0.0};
  bad_box.constraint->hi = {1.0, 1.0, 1.0};
  auto result = (*session)->Submit(bad_box);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*session)->stats().errors, 1);
}

TEST(SessionTest, SplitRunnerConfigDisablesSharedStateForOneShot) {
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.local_algorithm = core::LocalAlgorithm::kSfs;
  config.unit_bounds = false;
  // lint:allow(deprecated-constraint) exercises the legacy field mapping
  config.constraint = MiddleBox(3);
  config.engine.num_reducers = 7;

  const SplitConfig split = SplitRunnerConfig(config);
  EXPECT_FALSE(split.session.cache);
  EXPECT_EQ(split.session.admission_slots, 0);
  EXPECT_FALSE(split.session.unit_bounds);
  EXPECT_EQ(split.session.engine.num_reducers, 7);
  EXPECT_EQ(split.query.algorithm, Algorithm::kMrGpsrs);
  EXPECT_EQ(split.query.local_algorithm, core::LocalAlgorithm::kSfs);
  ASSERT_TRUE(split.query.constraint.has_value());
  EXPECT_EQ(split.query.constraint->hi[0], 0.6);
}

}  // namespace
}  // namespace skymr
