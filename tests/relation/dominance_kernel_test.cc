// Property tests for the block dominance kernels: the dispatched entry
// points and the portable fallback must agree bit-for-bit with the scalar
// Dominates/CompareDominance reference on every input family the skyline
// pipelines produce — uniform random, anti-correlated, and duplicate-heavy
// blocks, across dimensions (including the AVX2-specialized dim == 6).

#include "src/relation/dominance_kernel.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/relation/dominance.h"

namespace skymr {
namespace {

enum class Family { kUniform, kAntiCorrelated, kDuplicateHeavy };

/// A block of `count` rows in the given family plus one candidate drawn
/// from the same distribution.
struct Block {
  std::vector<double> rows;
  std::vector<double> candidate;
  size_t count;
  size_t dim;
};

Block MakeBlock(Family family, size_t count, size_t dim, Rng* rng) {
  Block block;
  block.count = count;
  block.dim = dim;
  block.rows.reserve((count + 1) * dim);
  std::vector<double> base(dim);
  for (size_t i = 0; i < count + 1; ++i) {
    std::vector<double> row(dim);
    switch (family) {
      case Family::kUniform:
        for (double& v : row) {
          v = rng->NextDouble();
        }
        break;
      case Family::kAntiCorrelated: {
        // Points near the hyperplane sum(x) = dim/2: lots of
        // incomparable pairs, the skyline-heavy regime.
        double sum = 0.0;
        for (size_t k = 0; k + 1 < dim; ++k) {
          row[k] = rng->NextDouble();
          sum += row[k];
        }
        row[dim - 1] =
            std::fabs(static_cast<double>(dim) / 2.0 - sum) /
            static_cast<double>(dim);
        break;
      }
      case Family::kDuplicateHeavy:
        // Coordinates from a 4-value alphabet: ties on most dimensions,
        // many exact duplicates and equal rows.
        for (double& v : row) {
          v = static_cast<double>(rng->NextBounded(4)) / 4.0;
        }
        break;
    }
    if (i < count) {
      block.rows.insert(block.rows.end(), row.begin(), row.end());
    } else {
      block.candidate = row;
    }
  }
  return block;
}

/// Scalar reference for FirstDominatorIndex built on CompareDominance.
size_t NaiveFirstDominator(const Block& block) {
  for (size_t i = 0; i < block.count; ++i) {
    const DominanceResult r = CompareDominance(
        block.rows.data() + i * block.dim, block.candidate.data(), block.dim);
    if (r == DominanceResult::kADominatesB) {
      return i;
    }
  }
  return block.count;
}

std::vector<Family> AllFamilies() {
  return {Family::kUniform, Family::kAntiCorrelated,
          Family::kDuplicateHeavy};
}

TEST(DominanceKernelTest, BackendNameIsKnown) {
  const std::string backend = DominanceKernelBackend();
  EXPECT_TRUE(backend == "avx2" || backend == "portable") << backend;
}

TEST(DominanceKernelTest, CoordinateSumMatchesLeftToRightAddition) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t dim = 1 + rng.NextBounded(10);
    std::vector<double> row(dim);
    double expected = 0.0;
    for (double& v : row) {
      v = rng.Uniform(-1.0, 1.0);
    }
    for (const double v : row) {
      expected += v;  // Same association order the kernel documents.
    }
    EXPECT_EQ(CoordinateSum(row.data(), dim), expected);
  }
}

TEST(DominanceKernelTest, CoordinateSumIsMonotoneUnderDominance) {
  // The screening key's soundness: a[k] <= b[k] for all k must imply
  // CoordinateSum(a) <= CoordinateSum(b), even with rounding.
  Rng rng(12);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t dim = 1 + rng.NextBounded(8);
    std::vector<double> a(dim);
    std::vector<double> b(dim);
    for (size_t k = 0; k < dim; ++k) {
      a[k] = rng.Uniform(-1e12, 1e12);
      b[k] = a[k] + (rng.NextBounded(2) == 0
                         ? 0.0
                         : rng.Uniform(0.0, 1e-3) * std::fabs(a[k]));
    }
    ASSERT_TRUE(DominatesOrEqual(a.data(), b.data(), dim));
    EXPECT_LE(CoordinateSum(a.data(), dim), CoordinateSum(b.data(), dim));
  }
}

TEST(DominanceKernelTest, CoordinateSumsFillsEveryRow) {
  Rng rng(13);
  const size_t dim = 5;
  const Block block = MakeBlock(Family::kUniform, 100, dim, &rng);
  std::vector<double> sums(block.count);
  CoordinateSums(block.rows.data(), block.count, dim, sums.data());
  for (size_t i = 0; i < block.count; ++i) {
    EXPECT_EQ(sums[i], CoordinateSum(block.rows.data() + i * dim, dim));
  }
}

TEST(DominanceKernelTest, FirstDominatorMatchesScalarReference) {
  Rng rng(21);
  for (const Family family : AllFamilies()) {
    for (const size_t dim : {1, 2, 3, 4, 6, 7, 9}) {
      for (int trial = 0; trial < 60; ++trial) {
        const size_t count = rng.NextBounded(64);
        const Block block = MakeBlock(family, count, dim, &rng);
        const size_t expected = NaiveFirstDominator(block);

        std::vector<double> sums(count);
        CoordinateSums(block.rows.data(), count, dim, sums.data());
        const double cand_sum = CoordinateSum(block.candidate.data(), dim);

        // Unscreened, screened, and portable must all agree.
        EXPECT_EQ(FirstDominatorIndex(block.candidate.data(), 0.0,
                                      block.rows.data(), nullptr, count, dim),
                  expected);
        EXPECT_EQ(FirstDominatorIndex(block.candidate.data(), cand_sum,
                                      block.rows.data(), sums.data(), count,
                                      dim),
                  expected);
        EXPECT_EQ(kernel_portable::FirstDominatorIndex(
                      block.candidate.data(), cand_sum, block.rows.data(),
                      sums.data(), count, dim),
                  expected);
        EXPECT_EQ(DominatesAny(block.candidate.data(), block.rows.data(),
                               count, dim),
                  expected != count);
      }
    }
  }
}

TEST(DominanceKernelTest, DominanceBitmapMatchesScalarReference) {
  Rng rng(22);
  for (const Family family : AllFamilies()) {
    for (const size_t dim : {1, 2, 4, 6, 8}) {
      for (int trial = 0; trial < 60; ++trial) {
        const size_t count = rng.NextBounded(130);
        const Block block = MakeBlock(family, count, dim, &rng);
        std::vector<double> sums(count);
        CoordinateSums(block.rows.data(), count, dim, sums.data());
        const double cand_sum = CoordinateSum(block.candidate.data(), dim);

        const size_t words = (count + 63) / 64;
        std::vector<uint64_t> dispatched(words, 0);
        std::vector<uint64_t> portable(words, 0);
        const size_t n1 = DominanceBitmap(
            block.candidate.data(), cand_sum, block.rows.data(), sums.data(),
            count, dim, dispatched.data());
        const size_t n2 = kernel_portable::DominanceBitmap(
            block.candidate.data(), cand_sum, block.rows.data(), sums.data(),
            count, dim, portable.data());

        size_t expected_count = 0;
        for (size_t i = 0; i < count; ++i) {
          const bool expected =
              CompareDominance(block.candidate.data(),
                               block.rows.data() + i * dim, dim) ==
              DominanceResult::kADominatesB;
          expected_count += expected ? 1 : 0;
          EXPECT_EQ((dispatched[i / 64] >> (i % 64)) & 1, expected ? 1u : 0u)
              << "row " << i << " dim " << dim;
          EXPECT_EQ((portable[i / 64] >> (i % 64)) & 1, expected ? 1u : 0u);
        }
        EXPECT_EQ(n1, expected_count);
        EXPECT_EQ(n2, expected_count);
      }
    }
  }
}

TEST(DominanceKernelTest, InsertScanMatchesScalarOnWindowBlocks) {
  // InsertScan requires a mutually non-dominated block, so build one the
  // way SkylineWindow does: keep only rows no earlier row dominates and
  // that dominate no earlier kept row.
  Rng rng(23);
  for (const Family family : AllFamilies()) {
    for (const size_t dim : {2, 3, 6, 8}) {
      for (int trial = 0; trial < 40; ++trial) {
        const Block raw = MakeBlock(family, 80, dim, &rng);
        std::vector<double> window;
        for (size_t i = 0; i < raw.count; ++i) {
          const double* row = raw.rows.data() + i * dim;
          const size_t n = window.size() / dim;
          bool keep = true;
          for (size_t j = 0; j < n && keep; ++j) {
            const DominanceResult r =
                CompareDominance(window.data() + j * dim, row, dim);
            keep = r != DominanceResult::kADominatesB &&
                   r != DominanceResult::kBDominatesA;
          }
          if (keep) {
            window.insert(window.end(), row, row + dim);
          }
        }
        const size_t n = window.size() / dim;

        size_t expected_first = n;
        std::vector<uint32_t> expected_evicted;
        for (size_t j = 0; j < n; ++j) {
          const DominanceResult r = CompareDominance(
              window.data() + j * dim, raw.candidate.data(), dim);
          if (r == DominanceResult::kADominatesB) {
            expected_first = j;
            break;
          }
          if (r == DominanceResult::kBDominatesA) {
            expected_evicted.push_back(static_cast<uint32_t>(j));
          }
        }

        std::vector<uint32_t> evicted;
        const size_t first = InsertScan(raw.candidate.data(), window.data(),
                                        n, dim, &evicted);
        std::vector<uint32_t> evicted_portable;
        const size_t first_portable = kernel_portable::InsertScan(
            raw.candidate.data(), window.data(), n, dim, &evicted_portable);

        EXPECT_EQ(first, expected_first);
        EXPECT_EQ(first_portable, expected_first);
        if (expected_first == n) {
          EXPECT_EQ(evicted, expected_evicted);
          EXPECT_EQ(evicted_portable, expected_evicted);
        }
      }
    }
  }
}

TEST(DominanceKernelTest, ScreeningHandlesNonFiniteCoordinates) {
  // NaN/inf rows must never be screened into a wrong answer. The scalar
  // semantics treat a NaN coordinate as "not worse" in either direction
  // (both comparisons are false), so the NaN row below — strictly better
  // on the finite coordinates — dominates the candidate, exactly as
  // `Dominates` reports. Its NaN sum compares false against the
  // candidate's, so screening must inspect it rather than skip it.
  const size_t dim = 3;
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> rows = {
      nan, 0.1, 0.1,   // NaN sum; dominates under the scalar semantics.
      0.1, 0.1, inf,   // +inf sum; incomparable.
      0.0, 0.0, 0.0,   // Dominates the candidate.
  };
  const std::vector<double> candidate = {0.5, 0.5, 0.5};
  ASSERT_TRUE(Dominates(rows.data(), candidate.data(), dim));
  std::vector<double> sums(3);
  CoordinateSums(rows.data(), 3, dim, sums.data());
  const double cand_sum = CoordinateSum(candidate.data(), dim);
  // Screened and unscreened agree with the scalar: first dominator is 0.
  EXPECT_EQ(FirstDominatorIndex(candidate.data(), cand_sum, rows.data(),
                                sums.data(), 3, dim),
            0u);
  EXPECT_EQ(FirstDominatorIndex(candidate.data(), 0.0, rows.data(), nullptr,
                                3, dim),
            0u);
  uint64_t word = 0;
  EXPECT_EQ(DominanceBitmap(candidate.data(), cand_sum, rows.data(),
                            sums.data(), 3, dim, &word),
            0u);
  EXPECT_EQ(word, 0u);
}

}  // namespace
}  // namespace skymr
