#include "src/relation/dominance.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace skymr {
namespace {

TEST(DominanceTest, StrictDominance) {
  const double a[] = {0.1, 0.2};
  const double b[] = {0.3, 0.4};
  EXPECT_TRUE(Dominates(a, b, 2));
  EXPECT_FALSE(Dominates(b, a, 2));
}

TEST(DominanceTest, EqualOnSomeDimensionsStillDominates) {
  // Definition 1: not worse on all, strictly better on at least one.
  const double a[] = {0.1, 0.5};
  const double b[] = {0.3, 0.5};
  EXPECT_TRUE(Dominates(a, b, 2));
  EXPECT_FALSE(Dominates(b, a, 2));
}

TEST(DominanceTest, EqualTuplesDoNotDominate) {
  const double a[] = {0.4, 0.4, 0.4};
  const double b[] = {0.4, 0.4, 0.4};
  EXPECT_FALSE(Dominates(a, b, 3));
  EXPECT_FALSE(Dominates(b, a, 3));
  EXPECT_TRUE(DominatesOrEqual(a, b, 3));
}

TEST(DominanceTest, IncomparableTuples) {
  const double a[] = {0.1, 0.9};
  const double b[] = {0.9, 0.1};
  EXPECT_FALSE(Dominates(a, b, 2));
  EXPECT_FALSE(Dominates(b, a, 2));
}

TEST(DominanceTest, OneDimensional) {
  const double a[] = {0.1};
  const double b[] = {0.2};
  EXPECT_TRUE(Dominates(a, b, 1));
  EXPECT_FALSE(Dominates(a, a, 1));
}

TEST(CompareDominanceTest, AllOutcomes) {
  const double a[] = {0.1, 0.2};
  const double b[] = {0.3, 0.4};
  const double c[] = {0.9, 0.0};
  EXPECT_EQ(CompareDominance(a, b, 2), DominanceResult::kADominatesB);
  EXPECT_EQ(CompareDominance(b, a, 2), DominanceResult::kBDominatesA);
  EXPECT_EQ(CompareDominance(a, a, 2), DominanceResult::kEqual);
  EXPECT_EQ(CompareDominance(a, c, 2), DominanceResult::kIncomparable);
}

TEST(CompareDominanceTest, ConsistentWithDominates) {
  Rng rng(3);
  std::vector<double> a(4);
  std::vector<double> b(4);
  for (int trial = 0; trial < 2000; ++trial) {
    for (int k = 0; k < 4; ++k) {
      // Coarse values force frequent ties.
      a[static_cast<size_t>(k)] = static_cast<double>(rng.NextBounded(4));
      b[static_cast<size_t>(k)] = static_cast<double>(rng.NextBounded(4));
    }
    const DominanceResult r = CompareDominance(a.data(), b.data(), 4);
    const bool a_dom = Dominates(a.data(), b.data(), 4);
    const bool b_dom = Dominates(b.data(), a.data(), 4);
    switch (r) {
      case DominanceResult::kADominatesB:
        EXPECT_TRUE(a_dom);
        EXPECT_FALSE(b_dom);
        break;
      case DominanceResult::kBDominatesA:
        EXPECT_TRUE(b_dom);
        EXPECT_FALSE(a_dom);
        break;
      case DominanceResult::kEqual:
      case DominanceResult::kIncomparable:
        EXPECT_FALSE(a_dom);
        EXPECT_FALSE(b_dom);
        break;
    }
  }
}

TEST(DominanceTest, TransitivityProperty) {
  // The paper's Lemma 1 proof rests on transitivity.
  Rng rng(4);
  std::vector<double> a(3);
  std::vector<double> b(3);
  std::vector<double> c(3);
  int confirmed = 0;
  for (int trial = 0; trial < 20000 && confirmed < 50; ++trial) {
    for (int k = 0; k < 3; ++k) {
      a[static_cast<size_t>(k)] = static_cast<double>(rng.NextBounded(5));
      b[static_cast<size_t>(k)] =
          a[static_cast<size_t>(k)] + static_cast<double>(rng.NextBounded(2));
      c[static_cast<size_t>(k)] =
          b[static_cast<size_t>(k)] + static_cast<double>(rng.NextBounded(2));
    }
    if (Dominates(a.data(), b.data(), 3) &&
        Dominates(b.data(), c.data(), 3)) {
      EXPECT_TRUE(Dominates(a.data(), c.data(), 3));
      ++confirmed;
    }
  }
  EXPECT_GT(confirmed, 0);
}

TEST(DominanceCounterTest, Accumulates) {
  DominanceCounter counter;
  EXPECT_EQ(counter.count(), 0u);
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.count(), 12u);
  counter.Reset();
  EXPECT_EQ(counter.count(), 0u);
}

}  // namespace
}  // namespace skymr
