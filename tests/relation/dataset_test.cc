#include "src/relation/dataset.h"

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(DatasetTest, EmptyDataset) {
  Dataset data(3);
  EXPECT_EQ(data.dim(), 3u);
  EXPECT_EQ(data.size(), 0u);
  EXPECT_TRUE(data.empty());
}

TEST(DatasetTest, AppendAndRead) {
  Dataset data(2);
  const TupleId a = data.Append({0.1, 0.2});
  const TupleId b = data.Append({0.3, 0.4});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_DOUBLE_EQ(data.Row(0)[0], 0.1);
  EXPECT_DOUBLE_EQ(data.Row(0)[1], 0.2);
  EXPECT_DOUBLE_EQ(data.Row(1)[0], 0.3);
  EXPECT_DOUBLE_EQ(data.RowPtr(1)[1], 0.4);
}

TEST(DatasetTest, RowMajorContiguousStorage) {
  Dataset data(2);
  data.Append({1.0, 2.0});
  data.Append({3.0, 4.0});
  const std::vector<double> expected{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(data.values(), expected);
}

TEST(DatasetTest, FromFlatValid) {
  auto data = Dataset::FromFlat(2, {1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 2u);
  EXPECT_DOUBLE_EQ(data->Row(1)[0], 3.0);
}

TEST(DatasetTest, FromFlatRejectsMisalignedBuffer) {
  EXPECT_FALSE(Dataset::FromFlat(3, {1.0, 2.0, 3.0, 4.0}).ok());
}

TEST(DatasetTest, FromFlatRejectsZeroDim) {
  EXPECT_FALSE(Dataset::FromFlat(0, {}).ok());
}

TEST(DatasetTest, ComputeBoundsTight) {
  Dataset data(2);
  data.Append({0.5, 0.9});
  data.Append({0.2, 1.5});
  data.Append({0.7, 0.1});
  const Bounds b = data.ComputeBounds();
  EXPECT_DOUBLE_EQ(b.lo[0], 0.2);
  EXPECT_DOUBLE_EQ(b.lo[1], 0.1);
  EXPECT_DOUBLE_EQ(b.hi[0], 0.7);
  EXPECT_DOUBLE_EQ(b.hi[1], 1.5);
}

TEST(DatasetTest, ComputeBoundsEmptyIsUnitCube) {
  Dataset data(4);
  const Bounds b = data.ComputeBounds();
  ASSERT_EQ(b.lo.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(b.lo[k], 0.0);
    EXPECT_DOUBLE_EQ(b.hi[k], 1.0);
  }
}

TEST(BoundsTest, UnitCube) {
  const Bounds b = Bounds::UnitCube(3);
  EXPECT_EQ(b.lo, (std::vector<double>{0.0, 0.0, 0.0}));
  EXPECT_EQ(b.hi, (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(DatasetTest, SingleValuePoint) {
  Dataset data(1);
  data.Append({0.5});
  const Bounds b = data.ComputeBounds();
  EXPECT_DOUBLE_EQ(b.lo[0], 0.5);
  EXPECT_DOUBLE_EQ(b.hi[0], 0.5);
}

}  // namespace
}  // namespace skymr
