#include "src/relation/skyline_verify.h"

#include <gtest/gtest.h>

namespace skymr {
namespace {

Dataset TwoDimExample() {
  // Skyline of these (min is better): ids 0 and 2.
  Dataset data(2);
  data.Append({0.1, 0.8});  // 0: skyline
  data.Append({0.5, 0.9});  // 1: dominated by 0 and 2
  data.Append({0.4, 0.2});  // 2: skyline
  data.Append({0.6, 0.3});  // 3: dominated by 2
  return data;
}

TEST(ReferenceSkylineTest, SimpleCase) {
  const Dataset data = TwoDimExample();
  EXPECT_EQ(ReferenceSkyline(data), (std::vector<TupleId>{0, 2}));
}

TEST(ReferenceSkylineTest, EmptyDataset) {
  Dataset data(2);
  EXPECT_TRUE(ReferenceSkyline(data).empty());
}

TEST(ReferenceSkylineTest, SingleTuple) {
  Dataset data(3);
  data.Append({0.5, 0.5, 0.5});
  EXPECT_EQ(ReferenceSkyline(data), (std::vector<TupleId>{0}));
}

TEST(ReferenceSkylineTest, DuplicateTuplesAllKept) {
  Dataset data(2);
  data.Append({0.1, 0.1});
  data.Append({0.1, 0.1});
  data.Append({0.5, 0.5});
  EXPECT_EQ(ReferenceSkyline(data), (std::vector<TupleId>{0, 1}));
}

TEST(ReferenceSkylineTest, TotallyOrderedChainKeepsOnlyBest) {
  Dataset data(2);
  data.Append({0.3, 0.3});
  data.Append({0.2, 0.2});
  data.Append({0.1, 0.1});
  EXPECT_EQ(ReferenceSkyline(data), (std::vector<TupleId>{2}));
}

TEST(SameIdSetTest, OrderInsensitive) {
  EXPECT_TRUE(SameIdSet({3, 1, 2}, {1, 2, 3}));
  EXPECT_FALSE(SameIdSet({1, 2}, {1, 2, 3}));
  EXPECT_FALSE(SameIdSet({1, 2, 4}, {1, 2, 3}));
  EXPECT_TRUE(SameIdSet({}, {}));
}

TEST(ExplainSkylineMismatchTest, AcceptsCorrectSkyline) {
  const Dataset data = TwoDimExample();
  EXPECT_EQ(ExplainSkylineMismatch(data, {2, 0}), "");
}

TEST(ExplainSkylineMismatchTest, RejectsDominatedTuple) {
  const Dataset data = TwoDimExample();
  const std::string msg = ExplainSkylineMismatch(data, {0, 1, 2});
  EXPECT_NE(msg.find("dominated"), std::string::npos);
}

TEST(ExplainSkylineMismatchTest, RejectsMissingTuple) {
  const Dataset data = TwoDimExample();
  const std::string msg = ExplainSkylineMismatch(data, {0});
  EXPECT_NE(msg.find("size mismatch"), std::string::npos);
}

TEST(ExplainSkylineMismatchTest, RejectsDuplicateIds) {
  const Dataset data = TwoDimExample();
  const std::string msg = ExplainSkylineMismatch(data, {0, 0});
  EXPECT_NE(msg.find("duplicate"), std::string::npos);
}

TEST(ExplainSkylineMismatchTest, RejectsOutOfRangeIds) {
  const Dataset data = TwoDimExample();
  const std::string msg = ExplainSkylineMismatch(data, {0, 99});
  EXPECT_NE(msg.find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace skymr
