#include "src/relation/preferences.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/relation/dominance.h"
#include "src/relation/skyline_verify.h"

namespace skymr {
namespace {

TEST(PreferencesTest, MinimizeEverywhereIsIdentity) {
  const Dataset data = data::GenerateIndependent(100, 3, 5);
  auto out = ApplyPreferences(
      data, {Preference::kMinimize, Preference::kMinimize,
             Preference::kMinimize});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->values(), data.values());
}

TEST(PreferencesTest, MaximizeReflectsDimension) {
  Dataset data(2);
  data.Append({1.0, 10.0});
  data.Append({2.0, 30.0});
  auto out =
      ApplyPreferences(data, {Preference::kMinimize, Preference::kMaximize});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->Row(0)[1], 20.0);  // 30 - 10.
  EXPECT_DOUBLE_EQ(out->Row(1)[1], 0.0);   // 30 - 30: best becomes 0.
  EXPECT_DOUBLE_EQ(out->Row(0)[0], 1.0);   // Minimize dim untouched.
}

TEST(PreferencesTest, SkylineMatchesManualSemantics) {
  // Minimize price, maximize rating. Hotel 0 is cheap but bad; hotel 1
  // expensive but great; hotel 2 dominated (pricier than 0, worse than 1).
  Dataset hotels(2);
  hotels.Append({50.0, 2.0});
  hotels.Append({200.0, 5.0});
  hotels.Append({100.0, 2.0});
  auto flipped = ApplyPreferences(
      hotels, {Preference::kMinimize, Preference::kMaximize});
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(ReferenceSkyline(*flipped), (std::vector<TupleId>{0, 1}));
}

TEST(PreferencesTest, DominancePreservedUnderReflection) {
  // Property: a dominates b in flipped space iff a is no worse everywhere
  // and better somewhere under the mixed semantics.
  const Dataset data = data::GenerateIndependent(300, 2, 9);
  auto flipped = ApplyPreferences(
      data, {Preference::kMaximize, Preference::kMinimize});
  ASSERT_TRUE(flipped.ok());
  for (TupleId a = 0; a < 50; ++a) {
    for (TupleId b = 0; b < 50; ++b) {
      if (a == b) {
        continue;
      }
      const double* ra = data.RowPtr(a);
      const double* rb = data.RowPtr(b);
      const bool mixed_dominates =
          ra[0] >= rb[0] && ra[1] <= rb[1] &&
          (ra[0] > rb[0] || ra[1] < rb[1]);
      EXPECT_EQ(Dominates(flipped->RowPtr(a), flipped->RowPtr(b), 2),
                mixed_dominates)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(PreferencesTest, WidthMismatchRejected) {
  const Dataset data = data::GenerateIndependent(10, 3, 1);
  EXPECT_FALSE(
      ApplyPreferences(data, {Preference::kMinimize}).ok());
}

TEST(PreferencesTest, EmptyDataset) {
  Dataset data(2);
  auto out = ApplyPreferences(
      data, {Preference::kMaximize, Preference::kMaximize});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

}  // namespace
}  // namespace skymr
