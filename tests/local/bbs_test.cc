// BBS kernel suite: randomized parity against SFS/BNL/reference across
// distributions and dimensionalities (the two window kernels and BBS
// must agree as id sets on every input), edge cases (duplicates, ties,
// single-tuple and empty partitions, constraint boxes), deterministic
// instrumentation, and the structural invariants of the STR-packed
// R-tree underneath (MBR containment, packing fill factors, sibling
// mindist order).

#include "src/local/bbs.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/local/bnl.h"
#include "src/local/rtree.h"
#include "src/local/sfs.h"
#include "src/relation/box.h"
#include "src/relation/skyline_verify.h"

namespace skymr {
namespace {

using data::Distribution;

std::vector<TupleId> SortedIds(const SkylineWindow& window) {
  std::vector<TupleId> ids = window.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

using BbsParam = std::tuple<Distribution, size_t /*dim*/, size_t /*n*/>;

class BbsParity : public ::testing::TestWithParam<BbsParam> {};

TEST_P(BbsParity, MatchesWindowKernelsAndReference) {
  const auto& [dist, dim, n] = GetParam();
  data::GeneratorConfig config;
  config.distribution = dist;
  config.dim = dim;
  config.cardinality = n;
  config.seed = 4700 + dim * 37 + n;
  const Dataset dataset = std::move(data::Generate(config)).value();

  const std::vector<TupleId> expected = ReferenceSkyline(dataset);
  BbsScratch scratch;
  EXPECT_TRUE(SameIdSet(SortedIds(BbsSkyline(dataset)), expected));
  // Scratch-reusing call on the same input must agree too.
  EXPECT_TRUE(SameIdSet(
      SortedIds(BbsSkyline(dataset, nullptr, nullptr, nullptr, &scratch)),
      expected));
  EXPECT_TRUE(SameIdSet(SortedIds(SfsSkyline(dataset)), expected));
  EXPECT_TRUE(SameIdSet(SortedIds(BnlSkyline(dataset)), expected));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbsParity,
    ::testing::Combine(
        ::testing::Values(Distribution::kIndependent,
                          Distribution::kCorrelated,
                          Distribution::kAntiCorrelated),
        ::testing::Values(size_t{2}, size_t{4}, size_t{6}, size_t{8}),
        ::testing::Values(size_t{1}, size_t{50}, size_t{600})),
    ([](const ::testing::TestParamInfo<BbsParam>& info) {
      const auto& [dist, dim, n] = info.param;
      std::string name = data::DistributionName(dist);
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_d" + std::to_string(dim) + "_n" + std::to_string(n);
    }));

TEST(BbsTest, EmptyRange) {
  const Dataset data = data::GenerateIndependent(10, 2, 1);
  EXPECT_TRUE(BbsSkyline({data, 3, 3}).empty());
}

TEST(BbsTest, SubrangeOnlySeesItsTuples) {
  Dataset data(2);
  data.Append({0.0, 0.0});  // Dominates everything, outside the range.
  data.Append({0.5, 0.6});
  data.Append({0.6, 0.5});
  EXPECT_TRUE(SameIdSet(SortedIds(BbsSkyline({data, 1, 3})), {1, 2}));
}

TEST(BbsTest, DuplicatesAllSurvive) {
  // Equal tuples never strictly dominate each other, so BBS must keep
  // every copy, exactly like the window kernels.
  Dataset data(3);
  for (int i = 0; i < 5; ++i) {
    data.Append({0.5, 0.5, 0.5});
  }
  EXPECT_EQ(BbsSkyline(data).size(), 5u);
}

TEST(BbsTest, CoarseGridDataWithManyTies) {
  // Values restricted to {0, 0.25, 0.5, 0.75} stress tie handling and
  // pack many identical leaf MBR corners.
  Dataset data(3);
  uint64_t state = 777;
  for (int i = 0; i < 400; ++i) {
    double row[3];
    for (double& v : row) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      v = static_cast<double>((state >> 33) % 4) * 0.25;
    }
    data.Append({row[0], row[1], row[2]});
  }
  EXPECT_TRUE(
      SameIdSet(SortedIds(BbsSkyline(data)), ReferenceSkyline(data)));
}

TEST(BbsTest, ConstraintBoxExcludesOutsideDominators) {
  // (0.1, 0.1) dominates everything but sits outside the box, so it
  // must neither appear nor disqualify the in-box rows.
  Dataset data(2);
  data.Append({0.1, 0.1});
  data.Append({0.5, 0.6});
  data.Append({0.6, 0.5});
  data.Append({0.55, 0.65});  // Dominated by (0.5, 0.6) inside the box.
  Box box;
  box.lo = {0.4, 0.4};
  box.hi = {1.0, 1.0};
  const SkylineWindow window =
      BbsSkyline(data, nullptr, nullptr, &box, nullptr);
  EXPECT_TRUE(SameIdSet(SortedIds(window), {1, 2}));
}

TEST(BbsTest, ConstraintBoxMatchesFilteredWindowKernel) {
  const Dataset data = data::GenerateAntiCorrelated(800, 4, 11);
  Box box;
  box.lo.assign(4, 0.2);
  box.hi.assign(4, 0.8);
  // Reference: filter ids by hand, then run the window kernel on them.
  std::vector<TupleId> inside;
  for (TupleId id = 0; id < data.size(); ++id) {
    if (box.Contains(data.Row(id).data(), data.dim())) {
      inside.push_back(id);
    }
  }
  const std::vector<TupleId> expected =
      SortedIds(BnlSkyline({data, inside}));
  const SkylineWindow window =
      BbsSkyline(data, nullptr, nullptr, &box, nullptr);
  EXPECT_TRUE(SameIdSet(SortedIds(window), expected));
}

TEST(BbsTest, ConstraintBoxCanEmptyTheInput) {
  const Dataset data = data::GenerateIndependent(100, 3, 5);
  Box box;
  box.lo.assign(3, 2.0);  // No generated row reaches [2, 3].
  box.hi.assign(3, 3.0);
  EXPECT_TRUE(BbsSkyline(data, nullptr, nullptr, &box, nullptr).empty());
}

TEST(BbsTest, CountsAndStatsAreDeterministic) {
  const Dataset data = data::GenerateAntiCorrelated(1500, 6, 21);
  DominanceCounter c1;
  DominanceCounter c2;
  BbsStats s1;
  BbsStats s2;
  const auto ids1 = SortedIds(BbsSkyline(data, &c1, &s1));
  const auto ids2 = SortedIds(BbsSkyline(data, &c2, &s2));
  EXPECT_EQ(ids1, ids2);
  EXPECT_GT(c1.count(), 0u);
  EXPECT_EQ(c1.count(), c2.count());
  EXPECT_GT(s1.nodes_visited, 0u);
  EXPECT_EQ(s1.nodes_visited, s2.nodes_visited);
  EXPECT_EQ(s1.entries_pruned, s2.entries_pruned);
  EXPECT_GT(s1.heap_peak, 0u);
  EXPECT_EQ(s1.heap_peak, s2.heap_peak);
}

TEST(BbsTest, StatsAccumulateAcrossCalls) {
  const Dataset data = data::GenerateIndependent(500, 4, 8);
  BbsStats once;
  BbsSkyline(data, nullptr, &once);
  BbsStats twice;
  BbsScratch scratch;
  BbsSkyline(data, nullptr, &twice, nullptr, &scratch);
  BbsSkyline(data, nullptr, &twice, nullptr, &scratch);
  EXPECT_EQ(twice.nodes_visited, 2 * once.nodes_visited);
  EXPECT_EQ(twice.entries_pruned, 2 * once.entries_pruned);
  EXPECT_EQ(twice.heap_peak, 2 * once.heap_peak);
}

TEST(BbsTest, ScratchReuseAcrossDifferentPartitions) {
  // One scratch across partitions of wildly different sizes and shapes —
  // the per-task reuse pattern — must match fresh-scratch runs.
  BbsScratch scratch;
  const size_t sizes[] = {700, 3, 128, 999, 1};
  for (size_t i = 0; i < 5; ++i) {
    const Dataset data = data::GenerateAntiCorrelated(
        sizes[i], 2 + i, /*seed=*/100 + i);
    EXPECT_TRUE(SameIdSet(
        SortedIds(BbsSkyline(data, nullptr, nullptr, nullptr, &scratch)),
        ReferenceSkyline(data)))
        << "partition " << i;
  }
}

// ---------------------------------------------------------------------
// STR R-tree structural invariants.
// ---------------------------------------------------------------------

/// Recursively checks subtree invariants; returns the number of nodes
/// and appends every slot the subtree's leaves cover.
void CheckSubtree(const StrRtree& tree, uint32_t id, size_t* nodes,
                  std::vector<uint32_t>* slots) {
  ++*nodes;
  const RtreeNode& node = tree.node(id);
  const size_t dim = tree.dim();
  ASSERT_GT(node.count, 0u);
  const double* lo = tree.NodeLo(id);
  const double* hi = tree.NodeHi(id);
  double lo_sum = 0.0;
  for (size_t k = 0; k < dim; ++k) {
    EXPECT_LE(lo[k], hi[k]);
    lo_sum += lo[k];
  }
  EXPECT_DOUBLE_EQ(tree.NodeMindist(id), lo_sum);
  if (node.leaf) {
    for (uint32_t slot = node.first; slot < node.first + node.count;
         ++slot) {
      slots->push_back(slot);
      const double* row = tree.SlotRow(slot);
      double sum = 0.0;
      for (size_t k = 0; k < dim; ++k) {
        EXPECT_GE(row[k], lo[k]);
        EXPECT_LE(row[k], hi[k]);
        sum += row[k];
      }
      EXPECT_DOUBLE_EQ(tree.SlotSum(slot), sum);
    }
    return;
  }
  double prev_mindist = -1.0;
  for (uint32_t i = 0; i < node.count; ++i) {
    const uint32_t child = tree.ChildAt(node, i);
    // Child MBR contained in the parent MBR.
    for (size_t k = 0; k < dim; ++k) {
      EXPECT_GE(tree.NodeLo(child)[k], lo[k]);
      EXPECT_LE(tree.NodeHi(child)[k], hi[k]);
    }
    // Sibling lists are mindist-ascending (the heap relies on expansion
    // order only for determinism, but the packing promises it).
    EXPECT_GE(tree.NodeMindist(child), prev_mindist);
    prev_mindist = tree.NodeMindist(child);
    CheckSubtree(tree, child, nodes, slots);
  }
}

TEST(StrRtreeTest, EmptyBuild) {
  const Dataset data = data::GenerateIndependent(10, 3, 2);
  StrRtree tree;
  tree.Build(data, {});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(StrRtreeTest, InvariantsAcrossSizesAndDims) {
  const RtreeOptions options;  // leaf_capacity = 16, fanout = 8.
  const size_t sizes[] = {1, 15, 16, 17, 128, 1000, 2049};
  StrRtree tree;
  for (const size_t n : sizes) {
    for (const size_t dim : {size_t{2}, size_t{5}}) {
      const Dataset data = data::GenerateAntiCorrelated(n, dim, 7 + n);
      std::vector<TupleId> ids(n);
      for (size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<TupleId>(i);
      }
      tree.Build(data, ids, options);
      ASSERT_FALSE(tree.empty());
      EXPECT_EQ(tree.size(), n);
      EXPECT_EQ(tree.dim(), dim);

      size_t nodes = 0;
      std::vector<uint32_t> slots;
      CheckSubtree(tree, tree.root(), &nodes, &slots);
      EXPECT_EQ(nodes, tree.node_count());

      // Every slot covered exactly once.
      std::sort(slots.begin(), slots.end());
      ASSERT_EQ(slots.size(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(slots[i], static_cast<uint32_t>(i));
      }
      // Slot ids are a permutation of the input ids.
      std::vector<TupleId> seen;
      seen.reserve(n);
      for (uint32_t slot = 0; slot < n; ++slot) {
        seen.push_back(tree.SlotId(slot));
      }
      std::sort(seen.begin(), seen.end());
      EXPECT_EQ(seen, ids);

      // STR packs perfectly: exactly ceil(n / B) leaves, every leaf at
      // most B slots, and at most one leaf below half full.
      size_t leaves = 0;
      size_t underfull = 0;
      for (uint32_t id = 0;
           id < static_cast<uint32_t>(tree.node_count()); ++id) {
        const RtreeNode& node = tree.node(id);
        if (!node.leaf) {
          EXPECT_LE(node.count, options.fanout);
          continue;
        }
        ++leaves;
        EXPECT_LE(node.count, options.leaf_capacity);
        if (node.count < (options.leaf_capacity + 1) / 2) {
          ++underfull;
        }
      }
      EXPECT_EQ(leaves,
                (n + options.leaf_capacity - 1) / options.leaf_capacity);
      EXPECT_LE(underfull, 1u);
    }
  }
}

TEST(StrRtreeTest, RebuildIsDeterministic) {
  const Dataset data = data::GenerateIndependent(500, 3, 13);
  std::vector<TupleId> ids(data.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<TupleId>(i);
  }
  StrRtree a;
  a.Build(data, ids);
  // Reuse the same object (the map-task pattern) after an unrelated
  // build; the second build must reproduce the first bit for bit.
  StrRtree b;
  b.Build(data::GenerateCorrelated(64, 2, 1), {0, 1, 2, 3});
  b.Build(data, ids);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t slot = 0; slot < a.size(); ++slot) {
    EXPECT_EQ(a.SlotId(slot), b.SlotId(slot));
  }
  for (uint32_t id = 0; id < static_cast<uint32_t>(a.node_count()); ++id) {
    EXPECT_EQ(a.node(id).first, b.node(id).first);
    EXPECT_EQ(a.node(id).count, b.node(id).count);
    EXPECT_EQ(a.node(id).leaf, b.node(id).leaf);
    EXPECT_EQ(a.NodeMindist(id), b.NodeMindist(id));
  }
}

}  // namespace
}  // namespace skymr
