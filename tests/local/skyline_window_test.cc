#include "src/local/skyline_window.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace skymr {
namespace {

TEST(SkylineWindowTest, InsertKeepsNonDominated) {
  SkylineWindow window(2);
  const double a[] = {0.5, 0.5};
  const double b[] = {0.2, 0.8};
  EXPECT_TRUE(window.Insert(a, 0, nullptr));
  EXPECT_TRUE(window.Insert(b, 1, nullptr));
  EXPECT_EQ(window.size(), 2u);
}

TEST(SkylineWindowTest, InsertRejectsDominated) {
  SkylineWindow window(2);
  const double a[] = {0.2, 0.2};
  const double b[] = {0.5, 0.5};
  EXPECT_TRUE(window.Insert(a, 0, nullptr));
  EXPECT_FALSE(window.Insert(b, 1, nullptr));
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.IdAt(0), 0u);
}

TEST(SkylineWindowTest, InsertEvictsDominatedEntries) {
  // Algorithm 4 lines 6-7: the new tuple removes window tuples it
  // dominates.
  SkylineWindow window(2);
  const double a[] = {0.5, 0.6};
  const double b[] = {0.6, 0.5};
  const double winner[] = {0.1, 0.1};
  window.Insert(a, 0, nullptr);
  window.Insert(b, 1, nullptr);
  EXPECT_TRUE(window.Insert(winner, 2, nullptr));
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.IdAt(0), 2u);
}

TEST(SkylineWindowTest, EvictsMultipleInOnePass) {
  SkylineWindow window(1);
  const double v9[] = {0.9};
  const double v8[] = {0.8};
  const double v7[] = {0.7};
  // 1-d tuples are totally ordered, but inserting descending keeps only
  // the latest.
  window.Insert(v9, 0, nullptr);
  EXPECT_EQ(window.size(), 1u);
  window.Insert(v8, 1, nullptr);
  window.Insert(v7, 2, nullptr);
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.IdAt(0), 2u);
}

TEST(SkylineWindowTest, DuplicateTuplesCoexist) {
  SkylineWindow window(2);
  const double a[] = {0.3, 0.3};
  EXPECT_TRUE(window.Insert(a, 0, nullptr));
  EXPECT_TRUE(window.Insert(a, 1, nullptr));
  EXPECT_EQ(window.size(), 2u);
}

TEST(SkylineWindowTest, CounterCountsChecks) {
  SkylineWindow window(2);
  DominanceCounter counter;
  const double a[] = {0.5, 0.5};
  const double b[] = {0.4, 0.6};
  const double c[] = {0.6, 0.4};
  window.Insert(a, 0, &counter);
  EXPECT_EQ(counter.count(), 0u);  // Empty window: no checks.
  window.Insert(b, 1, &counter);
  EXPECT_EQ(counter.count(), 1u);
  window.Insert(c, 2, &counter);
  EXPECT_EQ(counter.count(), 3u);  // Compared against both entries.
}

TEST(SkylineWindowTest, RemoveDominatedBy) {
  SkylineWindow target(2);
  const double t1[] = {0.5, 0.5};
  const double t2[] = {0.1, 0.9};
  target.Insert(t1, 0, nullptr);
  target.Insert(t2, 1, nullptr);

  SkylineWindow other(2);
  const double o1[] = {0.4, 0.4};  // Dominates t1, not t2.
  other.Insert(o1, 7, nullptr);

  target.RemoveDominatedBy(other, nullptr);
  ASSERT_EQ(target.size(), 1u);
  EXPECT_EQ(target.IdAt(0), 1u);
}

TEST(SkylineWindowTest, RemoveDominatedByEmptyOtherIsNoop) {
  SkylineWindow target(2);
  const double t1[] = {0.5, 0.5};
  target.Insert(t1, 0, nullptr);
  SkylineWindow other(2);
  target.RemoveDominatedBy(other, nullptr);
  EXPECT_EQ(target.size(), 1u);
}

TEST(SkylineWindowTest, RemoveDominatedByCanEmptyWindow) {
  SkylineWindow target(2);
  const double t1[] = {0.5, 0.5};
  const double t2[] = {0.6, 0.6};
  target.Insert(t1, 0, nullptr);
  target.AppendUnchecked(t2, 1);
  SkylineWindow other(2);
  const double o1[] = {0.1, 0.1};
  other.Insert(o1, 9, nullptr);
  target.RemoveDominatedBy(other, nullptr);
  EXPECT_TRUE(target.empty());
}

TEST(SkylineWindowTest, FilterKeepsSelected) {
  SkylineWindow window(2);
  const double a[] = {0.1, 0.9};
  const double b[] = {0.5, 0.5};
  const double c[] = {0.9, 0.1};
  window.AppendUnchecked(a, 0);
  window.AppendUnchecked(b, 1);
  window.AppendUnchecked(c, 2);
  window.Filter({true, false, true});
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window.IdAt(0), 0u);
  EXPECT_EQ(window.IdAt(1), 2u);
  EXPECT_DOUBLE_EQ(window.RowAt(1)[0], 0.9);
}

TEST(SkylineWindowTest, WindowInvariantAfterRandomInserts) {
  SkylineWindow window(3);
  uint64_t state = 88172645463325252ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 1000) / 1000.0;
  };
  double row[3];
  for (TupleId id = 0; id < 500; ++id) {
    for (double& v : row) {
      v = next();
    }
    window.Insert(row, id, nullptr);
  }
  // Invariant: no window tuple dominates another.
  for (size_t i = 0; i < window.size(); ++i) {
    for (size_t j = 0; j < window.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Dominates(window.RowAt(i), window.RowAt(j), 3));
      }
    }
  }
}

TEST(SkylineWindowTest, EqualityAndValuesLayout) {
  SkylineWindow a(2);
  const double r[] = {0.25, 0.75};
  a.AppendUnchecked(r, 5);
  SkylineWindow b(2);
  b.AppendUnchecked(r, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.values(), (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(a.ids(), (std::vector<TupleId>{5}));
}

}  // namespace
}  // namespace skymr
