#include "src/local/skyline_window.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/relation/dominance_kernel.h"

namespace skymr {
namespace {

TEST(SkylineWindowTest, InsertKeepsNonDominated) {
  SkylineWindow window(2);
  const double a[] = {0.5, 0.5};
  const double b[] = {0.2, 0.8};
  EXPECT_TRUE(window.Insert(a, 0, nullptr));
  EXPECT_TRUE(window.Insert(b, 1, nullptr));
  EXPECT_EQ(window.size(), 2u);
}

TEST(SkylineWindowTest, InsertRejectsDominated) {
  SkylineWindow window(2);
  const double a[] = {0.2, 0.2};
  const double b[] = {0.5, 0.5};
  EXPECT_TRUE(window.Insert(a, 0, nullptr));
  EXPECT_FALSE(window.Insert(b, 1, nullptr));
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.IdAt(0), 0u);
}

TEST(SkylineWindowTest, InsertEvictsDominatedEntries) {
  // Algorithm 4 lines 6-7: the new tuple removes window tuples it
  // dominates.
  SkylineWindow window(2);
  const double a[] = {0.5, 0.6};
  const double b[] = {0.6, 0.5};
  const double winner[] = {0.1, 0.1};
  window.Insert(a, 0, nullptr);
  window.Insert(b, 1, nullptr);
  EXPECT_TRUE(window.Insert(winner, 2, nullptr));
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.IdAt(0), 2u);
}

TEST(SkylineWindowTest, EvictsMultipleInOnePass) {
  SkylineWindow window(1);
  const double v9[] = {0.9};
  const double v8[] = {0.8};
  const double v7[] = {0.7};
  // 1-d tuples are totally ordered, but inserting descending keeps only
  // the latest.
  window.Insert(v9, 0, nullptr);
  EXPECT_EQ(window.size(), 1u);
  window.Insert(v8, 1, nullptr);
  window.Insert(v7, 2, nullptr);
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.IdAt(0), 2u);
}

TEST(SkylineWindowTest, DuplicateTuplesCoexist) {
  SkylineWindow window(2);
  const double a[] = {0.3, 0.3};
  EXPECT_TRUE(window.Insert(a, 0, nullptr));
  EXPECT_TRUE(window.Insert(a, 1, nullptr));
  EXPECT_EQ(window.size(), 2u);
}

TEST(SkylineWindowTest, CounterCountsChecks) {
  SkylineWindow window(2);
  DominanceCounter counter;
  const double a[] = {0.5, 0.5};
  const double b[] = {0.4, 0.6};
  const double c[] = {0.6, 0.4};
  window.Insert(a, 0, &counter);
  EXPECT_EQ(counter.count(), 0u);  // Empty window: no checks.
  window.Insert(b, 1, &counter);
  EXPECT_EQ(counter.count(), 1u);
  window.Insert(c, 2, &counter);
  EXPECT_EQ(counter.count(), 3u);  // Compared against both entries.
}

TEST(SkylineWindowTest, RemoveDominatedBy) {
  SkylineWindow target(2);
  const double t1[] = {0.5, 0.5};
  const double t2[] = {0.1, 0.9};
  target.Insert(t1, 0, nullptr);
  target.Insert(t2, 1, nullptr);

  SkylineWindow other(2);
  const double o1[] = {0.4, 0.4};  // Dominates t1, not t2.
  other.Insert(o1, 7, nullptr);

  target.RemoveDominatedBy(other, nullptr);
  ASSERT_EQ(target.size(), 1u);
  EXPECT_EQ(target.IdAt(0), 1u);
}

TEST(SkylineWindowTest, RemoveDominatedByEmptyOtherIsNoop) {
  SkylineWindow target(2);
  const double t1[] = {0.5, 0.5};
  target.Insert(t1, 0, nullptr);
  SkylineWindow other(2);
  target.RemoveDominatedBy(other, nullptr);
  EXPECT_EQ(target.size(), 1u);
}

TEST(SkylineWindowTest, RemoveDominatedByCanEmptyWindow) {
  SkylineWindow target(2);
  const double t1[] = {0.5, 0.5};
  const double t2[] = {0.6, 0.6};
  target.Insert(t1, 0, nullptr);
  target.AppendUnchecked(t2, 1);
  SkylineWindow other(2);
  const double o1[] = {0.1, 0.1};
  other.Insert(o1, 9, nullptr);
  target.RemoveDominatedBy(other, nullptr);
  EXPECT_TRUE(target.empty());
}

TEST(SkylineWindowTest, FilterKeepsSelected) {
  SkylineWindow window(2);
  const double a[] = {0.1, 0.9};
  const double b[] = {0.5, 0.5};
  const double c[] = {0.9, 0.1};
  window.AppendUnchecked(a, 0);
  window.AppendUnchecked(b, 1);
  window.AppendUnchecked(c, 2);
  window.Filter({true, false, true});
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window.IdAt(0), 0u);
  EXPECT_EQ(window.IdAt(1), 2u);
  EXPECT_DOUBLE_EQ(window.RowAt(1)[0], 0.9);
}

TEST(SkylineWindowTest, WindowInvariantAfterRandomInserts) {
  SkylineWindow window(3);
  uint64_t state = 88172645463325252ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 1000) / 1000.0;
  };
  double row[3];
  for (TupleId id = 0; id < 500; ++id) {
    for (double& v : row) {
      v = next();
    }
    window.Insert(row, id, nullptr);
  }
  // Invariant: no window tuple dominates another.
  for (size_t i = 0; i < window.size(); ++i) {
    for (size_t j = 0; j < window.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Dominates(window.RowAt(i), window.RowAt(j), 3));
      }
    }
  }
}

TEST(SkylineWindowTest, InsertedSetIsOrderInsensitive) {
  // The surviving id set depends only on the data, not on insertion
  // order: a tuple survives iff nothing in the dataset dominates it.
  // This pins the kernelized Insert (scan + swap-remove eviction) to the
  // declarative skyline semantics across input families.
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t dim = 2 + rng.NextBounded(5);
    const size_t n = 50 + rng.NextBounded(150);
    std::vector<double> data(n * dim);
    for (double& v : data) {
      // Duplicate-heavy alphabet: exercises ties and equal rows too.
      v = static_cast<double>(rng.NextBounded(6)) / 6.0;
    }
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    std::vector<TupleId> first_ids;
    for (int pass = 0; pass < 3; ++pass) {
      SkylineWindow window(dim);
      for (const size_t i : order) {
        window.Insert(data.data() + i * dim, static_cast<TupleId>(i),
                      nullptr);
      }
      std::vector<TupleId> ids = window.ids();
      std::sort(ids.begin(), ids.end());
      if (pass == 0) {
        first_ids = ids;
      } else {
        EXPECT_EQ(ids, first_ids) << "trial " << trial << " pass " << pass;
      }
      // Shuffle for the next pass.
      for (size_t i = n; i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextBounded(i)]);
      }
    }
  }
}

TEST(SkylineWindowTest, RemoveDominatedByMatchesNaiveReference) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t dim = 2 + rng.NextBounded(4);
    SkylineWindow target(dim);
    SkylineWindow other(dim);
    std::vector<double> row(dim);
    for (size_t i = 0; i < 120; ++i) {
      for (double& v : row) {
        v = rng.NextDouble();
      }
      (i % 2 == 0 ? target : other)
          .Insert(row.data(), static_cast<TupleId>(i), nullptr);
    }

    // Naive reference: survivors and the per-row check count the engine
    // must reproduce exactly (first dominator index + 1, else all).
    std::vector<TupleId> expected_ids;
    uint64_t expected_checks = 0;
    for (size_t i = 0; i < target.size(); ++i) {
      size_t first = other.size();
      for (size_t j = 0; j < other.size(); ++j) {
        if (Dominates(other.RowAt(j), target.RowAt(i), dim)) {
          first = j;
          break;
        }
      }
      expected_checks += first != other.size() ? first + 1 : other.size();
      if (first == other.size()) {
        expected_ids.push_back(target.IdAt(i));
      }
    }

    DominanceCounter counter;
    target.RemoveDominatedBy(other, &counter);
    std::vector<TupleId> ids = target.ids();
    std::sort(ids.begin(), ids.end());
    std::sort(expected_ids.begin(), expected_ids.end());
    EXPECT_EQ(ids, expected_ids) << "trial " << trial;
    EXPECT_EQ(counter.count(), expected_checks) << "trial " << trial;
  }
}

TEST(SkylineWindowTest, SumsTrackRowsThroughMutationsAndSerde) {
  Rng rng(555);
  SkylineWindow window(4);
  double row[4];
  for (TupleId id = 0; id < 400; ++id) {
    for (double& v : row) {
      v = rng.NextDouble();
    }
    window.Insert(row, id, nullptr);
  }
  ASSERT_EQ(window.sums().size(), window.size());
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window.sums()[i], CoordinateSum(window.RowAt(i), 4));
  }

  // The screening key is not serialized; the deserialized window must
  // rebuild it (and the wire bytes must match ByteSize exactly).
  ByteSink sink;
  Serde<SkylineWindow>::Write(window, &sink);
  EXPECT_EQ(sink.size(), window.ByteSize());
  ByteSource source(sink.buffer().data(), sink.size());
  const SkylineWindow copy = Serde<SkylineWindow>::Read(&source);
  EXPECT_EQ(copy, window);
  ASSERT_EQ(copy.sums().size(), copy.size());
  for (size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy.sums()[i], CoordinateSum(copy.RowAt(i), 4));
  }
}

TEST(SkylineWindowTest, EqualityAndValuesLayout) {
  SkylineWindow a(2);
  const double r[] = {0.25, 0.75};
  a.AppendUnchecked(r, 5);
  SkylineWindow b(2);
  b.AppendUnchecked(r, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.values(), (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(a.ids(), (std::vector<TupleId>{5}));
}

}  // namespace
}  // namespace skymr
