// Property suite: every local skyline algorithm (BNL, SFS, naive) computes
// exactly the reference skyline across distributions, dimensions, and
// cardinalities.

#include <algorithm>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/local/bnl.h"
#include "src/local/naive.h"
#include "src/local/sfs.h"
#include "src/relation/skyline_verify.h"

namespace skymr {
namespace {

using data::Distribution;

std::vector<TupleId> SortedIds(const SkylineWindow& window) {
  std::vector<TupleId> ids = window.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

using LocalParam = std::tuple<Distribution, size_t /*dim*/, size_t /*n*/>;

class LocalSkylineProperty : public ::testing::TestWithParam<LocalParam> {};

TEST_P(LocalSkylineProperty, AllAlgorithmsMatchReference) {
  const auto& [dist, dim, n] = GetParam();
  data::GeneratorConfig config;
  config.distribution = dist;
  config.dim = dim;
  config.cardinality = n;
  config.seed = 1234 + dim * 31 + n;
  const Dataset dataset = std::move(data::Generate(config)).value();

  const std::vector<TupleId> expected = ReferenceSkyline(dataset);
  EXPECT_TRUE(SameIdSet(SortedIds(BnlSkyline(dataset)), expected));
  EXPECT_TRUE(SameIdSet(SortedIds(SfsSkyline(dataset)), expected));
  EXPECT_TRUE(SameIdSet(SortedIds(NaiveSkyline(dataset)), expected));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalSkylineProperty,
    ::testing::Combine(
        ::testing::Values(Distribution::kIndependent,
                          Distribution::kCorrelated,
                          Distribution::kAntiCorrelated,
                          Distribution::kClustered),
        ::testing::Values(size_t{1}, size_t{2}, size_t{4}, size_t{7}),
        ::testing::Values(size_t{1}, size_t{50}, size_t{600})),
    ([](const ::testing::TestParamInfo<LocalParam>& info) {
      const auto& [dist, dim, n] = info.param;
      std::string name = data::DistributionName(dist);
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_d" + std::to_string(dim) + "_n" + std::to_string(n);
    }));

TEST(LocalSkylineTest, EmptyRange) {
  const Dataset data = data::GenerateIndependent(10, 2, 1);
  EXPECT_TRUE(BnlSkyline({data, 3, 3}).empty());
  EXPECT_TRUE(SfsSkyline({data, 3, 3}).empty());
  EXPECT_TRUE(NaiveSkyline(data, 3, 3).empty());
}

TEST(LocalSkylineTest, SubrangeOnlySeesItsTuples) {
  Dataset data(2);
  data.Append({0.0, 0.0});  // Dominates everything, outside the range.
  data.Append({0.5, 0.6});
  data.Append({0.6, 0.5});
  const SkylineWindow window = BnlSkyline({data, 1, 3});
  EXPECT_TRUE(SameIdSet(SortedIds(window), {1, 2}));
}

TEST(LocalSkylineTest, ExplicitIdSubset) {
  Dataset data(2);
  data.Append({0.1, 0.1});
  data.Append({0.5, 0.6});
  data.Append({0.6, 0.5});
  const SkylineWindow window =
      BnlSkyline({data, std::vector<TupleId>{1, 2}});
  EXPECT_TRUE(SameIdSet(SortedIds(window), {1, 2}));
}

TEST(LocalSkylineTest, TiesOnEveryDimension) {
  Dataset data(3);
  for (int i = 0; i < 5; ++i) {
    data.Append({0.5, 0.5, 0.5});
  }
  EXPECT_EQ(BnlSkyline(data).size(), 5u);
  EXPECT_EQ(SfsSkyline(data).size(), 5u);
  EXPECT_EQ(NaiveSkyline(data).size(), 5u);
}

TEST(LocalSkylineTest, CoarseGridDataWithManyTies) {
  // Values restricted to {0, 0.25, 0.5, 0.75} stress tie handling.
  Dataset data(3);
  uint64_t state = 12345;
  for (int i = 0; i < 400; ++i) {
    double row[3];
    for (double& v : row) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      v = static_cast<double>((state >> 33) % 4) * 0.25;
    }
    data.Append({row[0], row[1], row[2]});
  }
  const std::vector<TupleId> expected = ReferenceSkyline(data);
  EXPECT_TRUE(SameIdSet(SortedIds(BnlSkyline(data)), expected));
  EXPECT_TRUE(SameIdSet(SortedIds(SfsSkyline(data)), expected));
}

TEST(LocalSkylineTest, SfsDoesFewerChecksThanNaiveOnCorrelated) {
  const Dataset data = data::GenerateCorrelated(2000, 3, 3);
  DominanceCounter sfs_counter;
  DominanceCounter naive_counter;
  SfsSkyline(data, &sfs_counter);
  NaiveSkyline(data, &naive_counter);
  EXPECT_LT(sfs_counter.count(), naive_counter.count());
}

}  // namespace
}  // namespace skymr
