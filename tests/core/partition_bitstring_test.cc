#include "src/core/partition_bitstring.h"

#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::core {
namespace {

Grid MakeGrid(size_t dim, uint32_t ppd) {
  return std::move(Grid::Create(dim, ppd, Bounds::UnitCube(dim))).value();
}

TEST(BuildLocalBitstringTest, MarksOccupiedCells) {
  const Grid grid = MakeGrid(2, 3);
  Dataset data(2);
  data.Append({0.1, 0.1});  // Cell 0.
  data.Append({0.5, 0.1});  // Cell 1.
  data.Append({0.55, 0.15});  // Cell 1 again.
  data.Append({0.9, 0.9});  // Cell 8.
  const DynamicBitset bits =
      BuildLocalBitstring(grid, data, 0, static_cast<TupleId>(data.size()));
  EXPECT_EQ(bits.ToString(), "110000001");
}

TEST(BuildLocalBitstringTest, RangeRestricted) {
  const Grid grid = MakeGrid(2, 3);
  Dataset data(2);
  data.Append({0.1, 0.1});
  data.Append({0.9, 0.9});
  const DynamicBitset bits = BuildLocalBitstring(grid, data, 1, 2);
  EXPECT_EQ(bits.Count(), 1u);
  EXPECT_TRUE(bits.Test(8));
}

TEST(BuildLocalBitstringTest, EmptyRange) {
  const Grid grid = MakeGrid(2, 3);
  Dataset data(2);
  const DynamicBitset bits = BuildLocalBitstring(grid, data, 0, 0);
  EXPECT_TRUE(bits.None());
}

TEST(PruneDominatedTest, Figure2Example) {
  // Figure 2: non-empty cells {1,2,3,4,6} -> bitstring 011110100.
  // p4 is dominated? p4's dominators need coords <= (0,0): cell 0 is
  // empty, so p4 survives. p8 empty anyway. Nothing prunable: cells
  // 1(1,0),2(2,0),3(0,1),4(1,1),6(0,2): a dominator of 4 would be cell 0.
  const Grid grid = MakeGrid(2, 3);
  DynamicBitset bits = DynamicBitset::FromString("011110100");
  DynamicBitset literal = bits;
  EXPECT_EQ(PruneDominatedLiteral(grid, &literal), 0u);
  EXPECT_EQ(literal.ToString(), "011110100");
}

TEST(PruneDominatedTest, OriginPrunesInterior) {
  const Grid grid = MakeGrid(2, 3);
  // All cells occupied: cell 0 dominates {4,5,7,8}.
  DynamicBitset bits(9);
  bits.Fill();
  DynamicBitset pruned = bits;
  EXPECT_EQ(PruneDominatedLiteral(grid, &pruned), 4u);
  // Survivors are the cells with some zero coordinate: {0,1,2,3,6}.
  EXPECT_EQ(pruned.ToString(), "111100100");
  // Section 6's worked claim: rho_rem(3,2) = 3^2 - 2^2 = 5 survive.
  EXPECT_EQ(pruned.Count(), 5u);
}

TEST(PruneDominatedTest, TransitiveChainPrunedBySingleSeed) {
  // 1-d-style chain embedded in 2-d: cells (0,0), (1,1), (2,2).
  const Grid grid = MakeGrid(2, 3);
  DynamicBitset bits(9);
  bits.Set(0);
  bits.Set(4);
  bits.Set(8);
  DynamicBitset pruned = bits;
  EXPECT_EQ(PruneDominatedLiteral(grid, &pruned), 2u);
  EXPECT_TRUE(pruned.Test(0));
  EXPECT_FALSE(pruned.Test(4));
  EXPECT_FALSE(pruned.Test(8));
}

TEST(PruneDominatedTest, PrefixMatchesLiteralExhaustive2d) {
  const Grid grid = MakeGrid(2, 4);
  // All 2^16 occupancy patterns of a 4x4 grid.
  for (uint32_t pattern = 0; pattern < (1u << 16); ++pattern) {
    DynamicBitset bits(16);
    for (size_t i = 0; i < 16; ++i) {
      if ((pattern >> i) & 1u) {
        bits.Set(i);
      }
    }
    DynamicBitset literal = bits;
    DynamicBitset prefix = bits;
    const uint64_t a = PruneDominatedLiteral(grid, &literal);
    const uint64_t b = PruneDominatedPrefix(grid, &prefix);
    ASSERT_EQ(literal, prefix) << "pattern=" << pattern;
    ASSERT_EQ(a, b) << "pattern=" << pattern;
  }
}

TEST(PruneDominatedTest, PrefixMatchesLiteralRandomHighDim) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t dim = 1 + rng.NextBounded(4);
    const uint32_t ppd = static_cast<uint32_t>(2 + rng.NextBounded(4));
    const Grid grid = MakeGrid(dim, ppd);
    DynamicBitset bits(grid.num_cells());
    for (size_t i = 0; i < bits.size(); ++i) {
      if (rng.NextBounded(3) == 0) {
        bits.Set(i);
      }
    }
    DynamicBitset literal = bits;
    DynamicBitset prefix = bits;
    PruneDominatedLiteral(grid, &literal);
    PruneDominatedPrefix(grid, &prefix);
    ASSERT_EQ(literal, prefix) << "dim=" << dim << " ppd=" << ppd;
  }
}

TEST(PruneDominatedTest, PpdOneNothingToPrune) {
  const Grid grid = MakeGrid(3, 1);
  DynamicBitset bits(1);
  bits.Set(0);
  EXPECT_EQ(PruneDominated(grid, &bits, PruneMode::kLiteral), 0u);
  EXPECT_EQ(PruneDominated(grid, &bits, PruneMode::kPrefix), 0u);
  EXPECT_TRUE(bits.Test(0));
}

TEST(PruneDominatedTest, EmptyBitstringNoop) {
  const Grid grid = MakeGrid(2, 3);
  DynamicBitset bits(9);
  EXPECT_EQ(PruneDominated(grid, &bits, PruneMode::kPrefix), 0u);
  EXPECT_TRUE(bits.None());
}

TEST(PruneDominatedTest, NeverPrunesSkylineTuplesCells) {
  // Safety property behind Lemma 1: pruning a partition must never drop a
  // skyline tuple.
  for (const auto dist : {data::Distribution::kIndependent,
                          data::Distribution::kAntiCorrelated,
                          data::Distribution::kCorrelated}) {
    data::GeneratorConfig config;
    config.distribution = dist;
    config.cardinality = 800;
    config.dim = 3;
    config.seed = 7;
    const Dataset dataset = std::move(data::Generate(config)).value();
    const Grid grid = MakeGrid(3, 4);
    DynamicBitset bits = BuildLocalBitstring(
        grid, dataset, 0, static_cast<TupleId>(dataset.size()));
    PruneDominated(grid, &bits, PruneMode::kPrefix);
    for (const TupleId id : ReferenceSkyline(dataset)) {
      EXPECT_TRUE(bits.Test(grid.CellOf(dataset.RowPtr(id))))
          << "skyline tuple " << id << " lost to pruning ("
          << data::DistributionName(dist) << ")";
    }
  }
}

TEST(PruneDominatedTest, PrunedCellsContainOnlyDominatedTuples) {
  const Dataset dataset = data::GenerateIndependent(1000, 2, 13);
  const Grid grid = MakeGrid(2, 5);
  DynamicBitset before = BuildLocalBitstring(
      grid, dataset, 0, static_cast<TupleId>(dataset.size()));
  DynamicBitset after = before;
  PruneDominated(grid, &after, PruneMode::kLiteral);
  const std::vector<TupleId> skyline = ReferenceSkyline(dataset);
  const std::set<TupleId> skyline_set(skyline.begin(), skyline.end());
  for (size_t i = 0; i < dataset.size(); ++i) {
    const auto id = static_cast<TupleId>(i);
    const CellId cell = grid.CellOf(dataset.RowPtr(id));
    if (before.Test(cell) && !after.Test(cell)) {
      EXPECT_EQ(skyline_set.count(id), 0u)
          << "tuple " << id << " in pruned cell is in the skyline";
    }
  }
}

}  // namespace
}  // namespace skymr::core
