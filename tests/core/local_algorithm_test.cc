// The mapper-side local skyline algorithm option (Section 8 future work:
// "it is still interesting to optimize the local skyline computations").

#include <gtest/gtest.h>

#include "src/skymr.h"

namespace skymr {
namespace {

TEST(LocalAlgorithmTest, AllKernelsProduceIdenticalSkylines) {
  for (const auto dist : {data::Distribution::kIndependent,
                          data::Distribution::kAntiCorrelated,
                          data::Distribution::kCorrelated}) {
    data::GeneratorConfig gen;
    gen.distribution = dist;
    gen.cardinality = 1200;
    gen.dim = 3;
    gen.seed = 31;
    const Dataset data = std::move(data::Generate(gen)).value();
    for (const Algorithm algorithm :
         {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs}) {
      RunnerConfig bnl;
      bnl.algorithm = algorithm;
      bnl.engine.num_map_tasks = 4;
      bnl.engine.num_reducers = 3;
      bnl.ppd.max_candidate = 5;
      bnl.local_algorithm = core::LocalAlgorithm::kBnl;
      auto bnl_result = ComputeSkyline(data, bnl);
      ASSERT_TRUE(bnl_result.ok());
      EXPECT_EQ(ExplainSkylineMismatch(data, bnl_result->SkylineIds()), "")
          << AlgorithmName(algorithm);
      for (const auto local : {core::LocalAlgorithm::kSfs,
                               core::LocalAlgorithm::kBbs,
                               core::LocalAlgorithm::kAuto}) {
        RunnerConfig other = bnl;
        other.local_algorithm = local;
        auto other_result = ComputeSkyline(data, other);
        ASSERT_TRUE(other_result.ok());
        EXPECT_TRUE(SameIdSet(bnl_result->SkylineIds(),
                              other_result->SkylineIds()))
            << AlgorithmName(algorithm) << " "
            << data::DistributionName(dist) << " "
            << core::LocalAlgorithmName(local);
      }
    }
  }
}

TEST(LocalAlgorithmTest, SfsDoesFewerTupleComparisonsOnCorrelated) {
  // Presorting shines when most tuples are dominated early.
  const Dataset data = data::GenerateCorrelated(5000, 3, 37);
  RunnerConfig bnl;
  bnl.algorithm = Algorithm::kMrGpsrs;
  bnl.engine.num_map_tasks = 2;
  bnl.ppd.explicit_ppd = 2;  // Coarse grid: big per-partition workloads.
  bnl.local_algorithm = core::LocalAlgorithm::kBnl;
  RunnerConfig sfs = bnl;
  sfs.local_algorithm = core::LocalAlgorithm::kSfs;
  auto bnl_result = ComputeSkyline(data, bnl);
  auto sfs_result = ComputeSkyline(data, sfs);
  ASSERT_TRUE(bnl_result.ok());
  ASSERT_TRUE(sfs_result.ok());
  const int64_t bnl_cmps =
      bnl_result->jobs[1].counters.Get(mr::kCounterTupleComparisons);
  const int64_t sfs_cmps =
      sfs_result->jobs[1].counters.Get(mr::kCounterTupleComparisons);
  EXPECT_LT(sfs_cmps, bnl_cmps);
}

TEST(LocalAlgorithmTest, SfsRespectsConstraints) {
  const Dataset data = data::GenerateAntiCorrelated(1500, 3, 41);
  Box box;
  box.lo.assign(3, 0.25);
  box.hi.assign(3, 0.75);
  RunnerConfig bnl;
  bnl.algorithm = Algorithm::kMrGpmrs;
  bnl.engine.num_reducers = 3;
  bnl.ppd.max_candidate = 4;
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  bnl.constraint = box;
  bnl.local_algorithm = core::LocalAlgorithm::kBnl;
  RunnerConfig sfs = bnl;
  sfs.local_algorithm = core::LocalAlgorithm::kSfs;
  auto bnl_result = ComputeSkyline(data, bnl);
  auto sfs_result = ComputeSkyline(data, sfs);
  ASSERT_TRUE(bnl_result.ok());
  ASSERT_TRUE(sfs_result.ok());
  EXPECT_TRUE(
      SameIdSet(bnl_result->SkylineIds(), sfs_result->SkylineIds()));
}

TEST(LocalAlgorithmTest, BbsRespectsConstraints) {
  const Dataset data = data::GenerateAntiCorrelated(1500, 3, 41);
  Box box;
  box.lo.assign(3, 0.25);
  box.hi.assign(3, 0.75);
  RunnerConfig bnl;
  bnl.algorithm = Algorithm::kMrGpmrs;
  bnl.engine.num_reducers = 3;
  bnl.ppd.max_candidate = 4;
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  bnl.constraint = box;
  bnl.local_algorithm = core::LocalAlgorithm::kBnl;
  RunnerConfig bbs = bnl;
  bbs.local_algorithm = core::LocalAlgorithm::kBbs;
  auto bnl_result = ComputeSkyline(data, bnl);
  auto bbs_result = ComputeSkyline(data, bbs);
  ASSERT_TRUE(bnl_result.ok());
  ASSERT_TRUE(bbs_result.ok());
  EXPECT_TRUE(
      SameIdSet(bnl_result->SkylineIds(), bbs_result->SkylineIds()));
}

TEST(LocalAlgorithmTest, BbsEmitsInstrumentationCounters) {
  const Dataset data = data::GenerateAntiCorrelated(4000, 6, 53);
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.engine.num_map_tasks = 2;
  config.ppd.explicit_ppd = 2;  // Coarse grid: big per-partition workloads.
  config.local_algorithm = core::LocalAlgorithm::kBbs;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  const auto& counters = result->jobs[1].counters;
  EXPECT_GT(counters.Get(core::kCounterBbsNodesVisited), 0);
  EXPECT_GT(counters.Get(core::kCounterBbsHeapPeak), 0);
  EXPECT_GT(counters.Get(mr::kCounterTupleComparisons), 0);
}

TEST(LocalAlgorithmTest, AutoRecordsItsPerPartitionChoices) {
  // dim=6 with a coarse grid: large partitions route to BBS, small ones
  // to SFS; both decision counters and the choice itself are visible.
  const Dataset data = data::GenerateAntiCorrelated(4000, 6, 59);
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.engine.num_map_tasks = 2;
  config.ppd.explicit_ppd = 2;
  config.local_algorithm = core::LocalAlgorithm::kAuto;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ExplainSkylineMismatch(data, result->SkylineIds()), "");
  const auto& counters = result->jobs[1].counters;
  EXPECT_GT(counters.Get(core::kCounterBbsAutoBbs) +
                counters.Get(core::kCounterBbsAutoSfs),
            0);
}

TEST(LocalAlgorithmTest, ResolveAutoKernelCrossover) {
  using core::LocalAlgorithm;
  // Below the crossover dimensionality SFS wins regardless of size.
  EXPECT_EQ(core::ResolveAutoKernel(100000, 4), LocalAlgorithm::kSfs);
  // Tiny partitions never pay for the tree build.
  EXPECT_EQ(core::ResolveAutoKernel(100, 8), LocalAlgorithm::kSfs);
  // Big, high-dimensional partitions are BBS territory.
  EXPECT_EQ(core::ResolveAutoKernel(512, 5), LocalAlgorithm::kBbs);
  EXPECT_EQ(core::ResolveAutoKernel(10000, 8), LocalAlgorithm::kBbs);
}

TEST(LocalAlgorithmTest, Names) {
  EXPECT_STREQ(core::LocalAlgorithmName(core::LocalAlgorithm::kBnl), "bnl");
  EXPECT_STREQ(core::LocalAlgorithmName(core::LocalAlgorithm::kSfs), "sfs");
  EXPECT_STREQ(core::LocalAlgorithmName(core::LocalAlgorithm::kBbs), "bbs");
  EXPECT_STREQ(core::LocalAlgorithmName(core::LocalAlgorithm::kAuto),
               "auto");
}

TEST(LocalAlgorithmTest, ParseLocalAlgorithm) {
  using core::LocalAlgorithm;
  EXPECT_EQ(core::ParseLocalAlgorithm("bnl").value(), LocalAlgorithm::kBnl);
  EXPECT_EQ(core::ParseLocalAlgorithm("sfs").value(), LocalAlgorithm::kSfs);
  EXPECT_EQ(core::ParseLocalAlgorithm("bbs").value(), LocalAlgorithm::kBbs);
  EXPECT_EQ(core::ParseLocalAlgorithm("auto").value(),
            LocalAlgorithm::kAuto);
  EXPECT_FALSE(core::ParseLocalAlgorithm("bogus").ok());
  EXPECT_FALSE(core::ParseLocalAlgorithm("").ok());
}

}  // namespace
}  // namespace skymr
