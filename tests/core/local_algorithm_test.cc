// The mapper-side local skyline algorithm option (Section 8 future work:
// "it is still interesting to optimize the local skyline computations").

#include <gtest/gtest.h>

#include "src/skymr.h"

namespace skymr {
namespace {

TEST(LocalAlgorithmTest, SfsAndBnlProduceIdenticalSkylines) {
  for (const auto dist : {data::Distribution::kIndependent,
                          data::Distribution::kAntiCorrelated,
                          data::Distribution::kCorrelated}) {
    data::GeneratorConfig gen;
    gen.distribution = dist;
    gen.cardinality = 1200;
    gen.dim = 3;
    gen.seed = 31;
    const Dataset data = std::move(data::Generate(gen)).value();
    for (const Algorithm algorithm :
         {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs}) {
      RunnerConfig bnl;
      bnl.algorithm = algorithm;
      bnl.engine.num_map_tasks = 4;
      bnl.engine.num_reducers = 3;
      bnl.ppd.max_candidate = 5;
      bnl.local_algorithm = core::LocalAlgorithm::kBnl;
      RunnerConfig sfs = bnl;
      sfs.local_algorithm = core::LocalAlgorithm::kSfs;
      auto bnl_result = ComputeSkyline(data, bnl);
      auto sfs_result = ComputeSkyline(data, sfs);
      ASSERT_TRUE(bnl_result.ok());
      ASSERT_TRUE(sfs_result.ok());
      EXPECT_TRUE(SameIdSet(bnl_result->SkylineIds(),
                            sfs_result->SkylineIds()))
          << AlgorithmName(algorithm) << " "
          << data::DistributionName(dist);
      EXPECT_EQ(ExplainSkylineMismatch(data, sfs_result->SkylineIds()), "")
          << AlgorithmName(algorithm);
    }
  }
}

TEST(LocalAlgorithmTest, SfsDoesFewerTupleComparisonsOnCorrelated) {
  // Presorting shines when most tuples are dominated early.
  const Dataset data = data::GenerateCorrelated(5000, 3, 37);
  RunnerConfig bnl;
  bnl.algorithm = Algorithm::kMrGpsrs;
  bnl.engine.num_map_tasks = 2;
  bnl.ppd.explicit_ppd = 2;  // Coarse grid: big per-partition workloads.
  bnl.local_algorithm = core::LocalAlgorithm::kBnl;
  RunnerConfig sfs = bnl;
  sfs.local_algorithm = core::LocalAlgorithm::kSfs;
  auto bnl_result = ComputeSkyline(data, bnl);
  auto sfs_result = ComputeSkyline(data, sfs);
  ASSERT_TRUE(bnl_result.ok());
  ASSERT_TRUE(sfs_result.ok());
  const int64_t bnl_cmps =
      bnl_result->jobs[1].counters.Get(mr::kCounterTupleComparisons);
  const int64_t sfs_cmps =
      sfs_result->jobs[1].counters.Get(mr::kCounterTupleComparisons);
  EXPECT_LT(sfs_cmps, bnl_cmps);
}

TEST(LocalAlgorithmTest, SfsRespectsConstraints) {
  const Dataset data = data::GenerateAntiCorrelated(1500, 3, 41);
  Box box;
  box.lo.assign(3, 0.25);
  box.hi.assign(3, 0.75);
  RunnerConfig bnl;
  bnl.algorithm = Algorithm::kMrGpmrs;
  bnl.engine.num_reducers = 3;
  bnl.ppd.max_candidate = 4;
  bnl.constraint = box;
  bnl.local_algorithm = core::LocalAlgorithm::kBnl;
  RunnerConfig sfs = bnl;
  sfs.local_algorithm = core::LocalAlgorithm::kSfs;
  auto bnl_result = ComputeSkyline(data, bnl);
  auto sfs_result = ComputeSkyline(data, sfs);
  ASSERT_TRUE(bnl_result.ok());
  ASSERT_TRUE(sfs_result.ok());
  EXPECT_TRUE(
      SameIdSet(bnl_result->SkylineIds(), sfs_result->SkylineIds()));
}

TEST(LocalAlgorithmTest, Names) {
  EXPECT_STREQ(core::LocalAlgorithmName(core::LocalAlgorithm::kBnl), "bnl");
  EXPECT_STREQ(core::LocalAlgorithmName(core::LocalAlgorithm::kSfs), "sfs");
}

}  // namespace
}  // namespace skymr
