#include "src/core/hybrid.h"

#include <gtest/gtest.h>

#include "src/core/partition_bitstring.h"
#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::core {
namespace {

Grid MakeGrid(size_t dim, uint32_t ppd) {
  return std::move(Grid::Create(dim, ppd, Bounds::UnitCube(dim))).value();
}

BitstringBuildResult BuildFor(const Dataset& data, const Grid& grid) {
  BitstringBuildResult result;
  result.ppd = grid.ppd();
  result.bits = BuildLocalBitstring(grid, data, 0,
                                    static_cast<TupleId>(data.size()));
  result.nonempty = result.bits.Count();
  result.pruned = PruneDominated(grid, &result.bits);
  return result;
}

TEST(EstimateSkylineFractionTest, MatchesExactFractionOnSmallData) {
  const Dataset data = data::GenerateIndependent(1000, 3, 3);
  // sample_size >= data size: the estimate is the exact fraction.
  const double estimate = EstimateSkylineFraction(data, 100000);
  const double exact = static_cast<double>(ReferenceSkyline(data).size()) /
                       static_cast<double>(data.size());
  EXPECT_DOUBLE_EQ(estimate, exact);
}

TEST(EstimateSkylineFractionTest, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(EstimateSkylineFraction(Dataset(2), 100), 0.0);
  const Dataset data = data::GenerateIndependent(10, 2, 1);
  EXPECT_DOUBLE_EQ(EstimateSkylineFraction(data, 0), 0.0);
}

TEST(EstimateSkylineFractionTest, DiscriminatesDistributions) {
  const Dataset indep = data::GenerateIndependent(20000, 3, 5);
  const Dataset anti = data::GenerateAntiCorrelated(20000, 3, 5);
  const double f_indep = EstimateSkylineFraction(indep, 2048);
  const double f_anti = EstimateSkylineFraction(anti, 2048);
  EXPECT_LT(f_indep, 0.05);
  EXPECT_GT(f_anti, 0.05);
  EXPECT_GT(f_anti, 3.0 * f_indep);
}

TEST(HybridTest, IndependentLowDimPicksSingleReducer) {
  // Section 7: "MR-GPSRS performs marginally better when the skyline
  // fraction is small."
  const Dataset data = data::GenerateIndependent(8000, 3, 7);
  const Grid grid = MakeGrid(3, 4);
  const BitstringBuildResult bitstring = BuildFor(data, grid);
  const HybridDecision decision =
      DecideHybrid(HybridPolicy{}, data, grid, bitstring);
  EXPECT_FALSE(decision.use_multiple_reducers);
  EXPECT_EQ(decision.num_reducers, 1);
}

TEST(HybridTest, AntiCorrelatedPicksMultipleReducers) {
  // Section 7: "MR-GPMRS performs significantly better when a large
  // fraction of the tuples are in the skyline."
  const Dataset data = data::GenerateAntiCorrelated(8000, 4, 7);
  const Grid grid = MakeGrid(4, 3);
  const BitstringBuildResult bitstring = BuildFor(data, grid);
  const HybridDecision decision =
      DecideHybrid(HybridPolicy{}, data, grid, bitstring);
  EXPECT_TRUE(decision.use_multiple_reducers);
  EXPECT_GT(decision.num_reducers, 1);
  EXPECT_GT(decision.sampled_skyline_fraction, 0.15);
}

TEST(HybridTest, ReducersCappedByGroupCount) {
  Dataset data(2);
  data.Append({0.1, 0.9});
  data.Append({0.9, 0.1});  // Two incomparable cells -> two groups.
  const Grid grid = MakeGrid(2, 4);
  const BitstringBuildResult bitstring = BuildFor(data, grid);
  HybridPolicy policy;
  policy.preferred_reducers = 50;
  policy.skyline_fraction_threshold = 0.0;  // Force the GPMRS branch.
  const HybridDecision decision =
      DecideHybrid(policy, data, grid, bitstring);
  EXPECT_TRUE(decision.use_multiple_reducers);
  EXPECT_EQ(decision.num_groups, 2u);
  EXPECT_EQ(decision.num_reducers, 2);
}

TEST(HybridTest, SingleGroupForcesSingleReducer) {
  Dataset data(2);
  data.Append({0.1, 0.1});  // One cell, one group.
  const Grid grid = MakeGrid(2, 4);
  const BitstringBuildResult bitstring = BuildFor(data, grid);
  HybridPolicy policy;
  policy.skyline_fraction_threshold = 0.0;
  const HybridDecision decision =
      DecideHybrid(policy, data, grid, bitstring);
  EXPECT_FALSE(decision.use_multiple_reducers);
  EXPECT_EQ(decision.num_reducers, 1);
}

TEST(HybridTest, EmptyDatasetSafe) {
  const Dataset data(2);
  const Grid grid = MakeGrid(2, 3);
  BitstringBuildResult bitstring;
  bitstring.ppd = 3;
  bitstring.bits = DynamicBitset(9);
  bitstring.nonempty = 0;
  const HybridDecision decision =
      DecideHybrid(HybridPolicy{}, data, grid, bitstring);
  EXPECT_FALSE(decision.use_multiple_reducers);
  EXPECT_EQ(decision.num_reducers, 1);
  EXPECT_DOUBLE_EQ(decision.sampled_skyline_fraction, 0.0);
}

}  // namespace
}  // namespace skymr::core
