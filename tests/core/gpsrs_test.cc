#include "src/core/gpsrs.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/partition_bitstring.h"
#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::core {
namespace {

struct Prepared {
  std::shared_ptr<const Dataset> data;
  std::unique_ptr<Grid> grid;
  DynamicBitset bits;
};

Prepared Prepare(Dataset dataset, uint32_t ppd) {
  Prepared p;
  p.data = std::make_shared<const Dataset>(std::move(dataset));
  p.grid = std::make_unique<Grid>(std::move(
      Grid::Create(p.data->dim(), ppd, Bounds::UnitCube(p.data->dim())))
                                      .value());
  p.bits = BuildLocalBitstring(*p.grid, *p.data, 0,
                               static_cast<TupleId>(p.data->size()));
  PruneDominated(*p.grid, &p.bits);
  return p;
}

TEST(GpsrsTest, ComputesExactSkyline) {
  const Prepared p = Prepare(data::GenerateIndependent(3000, 3, 41), 4);
  mr::EngineOptions engine;
  engine.num_map_tasks = 6;
  auto run = RunGpsrsJob(p.data, *p.grid, p.bits, engine);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(ExplainSkylineMismatch(*p.data, run->skyline.ids()), "");
}

TEST(GpsrsTest, MapperCountInvariance) {
  const Prepared p = Prepare(data::GenerateAntiCorrelated(1200, 4, 43), 3);
  std::vector<TupleId> reference;
  for (const int m : {1, 3, 8, 20}) {
    mr::EngineOptions engine;
    engine.num_map_tasks = m;
    auto run = RunGpsrsJob(p.data, *p.grid, p.bits, engine);
    ASSERT_TRUE(run.ok());
    std::vector<TupleId> ids = run->skyline.ids();
    std::sort(ids.begin(), ids.end());
    if (reference.empty()) {
      reference = ids;
      EXPECT_EQ(ExplainSkylineMismatch(*p.data, ids), "");
    } else {
      EXPECT_EQ(ids, reference) << "m=" << m;
    }
  }
}

TEST(GpsrsTest, AlwaysSingleReducer) {
  const Prepared p = Prepare(data::GenerateIndependent(500, 2, 47), 3);
  mr::EngineOptions engine;
  engine.num_reducers = 8;  // Must be overridden to 1.
  auto run = RunGpsrsJob(p.data, *p.grid, p.bits, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->metrics.reduce_tasks.size(), 1u);
}

TEST(GpsrsTest, EmptyDataset) {
  const Prepared p = Prepare(Dataset(3), 2);
  mr::EngineOptions engine;
  auto run = RunGpsrsJob(p.data, *p.grid, p.bits, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->skyline.empty());
}

TEST(GpsrsTest, SingleTuple) {
  Dataset dataset(2);
  dataset.Append({0.5, 0.5});
  const Prepared p = Prepare(std::move(dataset), 3);
  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  auto run = RunGpsrsJob(p.data, *p.grid, p.bits, engine);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->skyline.size(), 1u);
  EXPECT_EQ(run->skyline.IdAt(0), 0u);
}

TEST(GpsrsTest, DuplicateTuplesAllReported) {
  Dataset dataset(2);
  for (int i = 0; i < 4; ++i) {
    dataset.Append({0.1, 0.2});
  }
  dataset.Append({0.9, 0.9});  // Dominated.
  const Prepared p = Prepare(std::move(dataset), 2);
  mr::EngineOptions engine;
  engine.num_map_tasks = 3;
  auto run = RunGpsrsJob(p.data, *p.grid, p.bits, engine);
  ASSERT_TRUE(run.ok());
  std::vector<TupleId> ids = run->skyline.ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<TupleId>{0, 1, 2, 3}));
}

TEST(GpsrsTest, PrunedPartitionTuplesNeverShipped) {
  // With uniform data, tuples in dominated partitions are dropped at the
  // mappers (Algorithm 3 line 4), so shuffle bytes shrink versus a run
  // with an all-ones bitstring.
  const Dataset dataset = data::GenerateIndependent(4000, 2, 53);
  const Prepared pruned = Prepare(dataset, 5);

  Prepared unpruned;
  unpruned.data = pruned.data;
  unpruned.grid = std::make_unique<Grid>(*pruned.grid);
  unpruned.bits = DynamicBitset(pruned.grid->num_cells());
  unpruned.bits.Fill();

  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  auto run_pruned =
      RunGpsrsJob(pruned.data, *pruned.grid, pruned.bits, engine);
  auto run_unpruned =
      RunGpsrsJob(unpruned.data, *unpruned.grid, unpruned.bits, engine);
  ASSERT_TRUE(run_pruned.ok());
  ASSERT_TRUE(run_unpruned.ok());
  EXPECT_LT(run_pruned->metrics.shuffle_bytes,
            run_unpruned->metrics.shuffle_bytes);
  EXPECT_GT(run_pruned->metrics.counters.Get(mr::kCounterTuplesPruned), 0);
  // Both still compute the right skyline.
  EXPECT_EQ(ExplainSkylineMismatch(*pruned.data, run_pruned->skyline.ids()),
            "");
  EXPECT_EQ(
      ExplainSkylineMismatch(*unpruned.data, run_unpruned->skyline.ids()),
      "");
}

TEST(GpsrsTest, CountersPopulated) {
  const Prepared p = Prepare(data::GenerateIndependent(2000, 3, 59), 3);
  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  auto run = RunGpsrsJob(p.data, *p.grid, p.bits, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->metrics.counters.Get(mr::kCounterTupleComparisons), 0);
  EXPECT_GT(run->metrics.counters.Get(mr::kCounterPartitionComparisons), 0);
}

TEST(GpsrsTest, RejectsMismatchedBitstring) {
  const Prepared p = Prepare(data::GenerateIndependent(100, 2, 61), 3);
  DynamicBitset wrong_size(4);
  mr::EngineOptions engine;
  EXPECT_FALSE(RunGpsrsJob(p.data, *p.grid, wrong_size, engine).ok());
  EXPECT_FALSE(RunGpsrsJob(nullptr, *p.grid, p.bits, engine).ok());
}

}  // namespace
}  // namespace skymr::core
