#include "src/core/bitstring_job.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/data/generator.h"

namespace skymr::core {
namespace {

std::shared_ptr<const Dataset> Share(Dataset data) {
  return std::make_shared<const Dataset>(std::move(data));
}

BitstringJobConfig ConfigFor(const Dataset& data,
                             std::vector<uint32_t> candidates) {
  BitstringJobConfig config;
  config.bounds = Bounds::UnitCube(data.dim());
  config.candidates = std::move(candidates);
  config.cardinality = data.size();
  return config;
}

TEST(BitstringJobTest, FixedPpdMatchesSequentialComputation) {
  const auto data = Share(data::GenerateIndependent(2000, 2, 17));
  const auto config = ConfigFor(*data, {4});
  mr::EngineOptions engine;
  engine.num_map_tasks = 5;
  auto run = RunBitstringJob(data, config, engine);
  ASSERT_TRUE(run.ok()) << run.status();

  // Sequential reference: Equation 1 then Equation 2 on the whole dataset.
  const Grid grid =
      std::move(Grid::Create(2, 4, Bounds::UnitCube(2))).value();
  DynamicBitset expected = BuildLocalBitstring(
      grid, *data, 0, static_cast<TupleId>(data->size()));
  const uint64_t nonempty = expected.Count();
  const uint64_t pruned = PruneDominated(grid, &expected);

  EXPECT_EQ(run->result.ppd, 4u);
  EXPECT_EQ(run->result.bits, expected);
  EXPECT_EQ(run->result.nonempty, nonempty);
  EXPECT_EQ(run->result.pruned, pruned);
}

TEST(BitstringJobTest, SplitCountDoesNotChangeResult) {
  const auto data = Share(data::GenerateAntiCorrelated(1000, 3, 23));
  const auto config = ConfigFor(*data, {3});
  DynamicBitset reference;
  for (const int m : {1, 2, 7, 16}) {
    mr::EngineOptions engine;
    engine.num_map_tasks = m;
    auto run = RunBitstringJob(data, config, engine);
    ASSERT_TRUE(run.ok());
    if (reference.empty()) {
      reference = run->result.bits;
    } else {
      EXPECT_EQ(run->result.bits, reference) << "m=" << m;
    }
    EXPECT_EQ(run->metrics.map_tasks.size(), static_cast<size_t>(m));
    EXPECT_EQ(run->metrics.reduce_tasks.size(), 1u);  // Single reducer.
  }
}

TEST(BitstringJobTest, CandidateSeriesReportsOccupancies) {
  const auto data = Share(data::GenerateIndependent(5000, 2, 29));
  const auto config = ConfigFor(*data, {2, 3, 4, 5});
  mr::EngineOptions engine;
  engine.num_map_tasks = 3;
  auto run = RunBitstringJob(data, config, engine);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->result.occupancies.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const auto& [ppd, rho] = run->result.occupancies[i];
    EXPECT_EQ(ppd, i + 2);
    // 5000 uniform tuples fill small grids completely.
    const uint64_t cells = ppd * ppd;
    EXPECT_EQ(rho, cells) << "ppd=" << ppd;
  }
  // Paper-literal selection with full occupancy everywhere picks the
  // largest candidate.
  EXPECT_EQ(run->result.ppd, 5u);
}

TEST(BitstringJobTest, PruningClearsDominatedPartitions) {
  // Uniform 2-d data at PPD 3 fills all 9 cells; Equation 2 leaves the
  // two boundary surfaces (rho_rem(3,2) = 5 cells).
  const auto data = Share(data::GenerateIndependent(5000, 2, 31));
  const auto config = ConfigFor(*data, {3});
  mr::EngineOptions engine;
  auto run = RunBitstringJob(data, config, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result.nonempty, 9u);
  EXPECT_EQ(run->result.pruned, 4u);
  EXPECT_EQ(run->result.bits.Count(), 5u);
  EXPECT_EQ(run->metrics.counters.Get(mr::kCounterPartitionsPruned), 4);
}

TEST(BitstringJobTest, EmptyDatasetProducesEmptyBitstring) {
  const auto data = Share(Dataset(2));
  const auto config = ConfigFor(*data, {2, 3});
  mr::EngineOptions engine;
  auto run = RunBitstringJob(data, config, engine);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->result.bits.None());
  EXPECT_EQ(run->result.nonempty, 0u);
}

TEST(BitstringJobTest, ValidatesInputs) {
  const auto data = Share(data::GenerateIndependent(10, 2, 1));
  mr::EngineOptions engine;
  // No candidates.
  EXPECT_FALSE(RunBitstringJob(data, ConfigFor(*data, {}), engine).ok());
  // Dimension mismatch in bounds.
  BitstringJobConfig bad = ConfigFor(*data, {2});
  bad.bounds = Bounds::UnitCube(3);
  EXPECT_FALSE(RunBitstringJob(data, bad, engine).ok());
  // Null dataset.
  EXPECT_FALSE(
      RunBitstringJob(nullptr, ConfigFor(*data, {2}), engine).ok());
}

TEST(BitstringJobTest, ResultSerdeRoundTrip) {
  BitstringBuildResult result;
  result.ppd = 3;
  result.bits = DynamicBitset::FromString("011110100");
  result.nonempty = 5;
  result.pruned = 2;
  result.occupancies = {{2, 4}, {3, 5}};
  const auto round = DeserializeFromBytes<BitstringBuildResult>(
      SerializeToBytes(result));
  EXPECT_EQ(round.ppd, 3u);
  EXPECT_EQ(round.bits, result.bits);
  EXPECT_EQ(round.nonempty, 5u);
  EXPECT_EQ(round.pruned, 2u);
  EXPECT_EQ(round.occupancies, result.occupancies);
}

TEST(BitstringJobTest, ShuffleBytesScaleWithCandidates) {
  const auto data = Share(data::GenerateIndependent(500, 2, 37));
  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  auto one = RunBitstringJob(data, ConfigFor(*data, {4}), engine);
  auto three = RunBitstringJob(data, ConfigFor(*data, {2, 3, 4}), engine);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  EXPECT_GT(three->metrics.shuffle_bytes, one->metrics.shuffle_bytes);
}

}  // namespace
}  // namespace skymr::core
