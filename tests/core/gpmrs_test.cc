#include "src/core/gpmrs.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/partition_bitstring.h"
#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::core {
namespace {

struct Prepared {
  std::shared_ptr<const Dataset> data;
  std::unique_ptr<Grid> grid;
  DynamicBitset bits;
};

Prepared Prepare(Dataset dataset, uint32_t ppd) {
  Prepared p;
  p.data = std::make_shared<const Dataset>(std::move(dataset));
  p.grid = std::make_unique<Grid>(std::move(
      Grid::Create(p.data->dim(), ppd, Bounds::UnitCube(p.data->dim())))
                                      .value());
  p.bits = BuildLocalBitstring(*p.grid, *p.data, 0,
                               static_cast<TupleId>(p.data->size()));
  PruneDominated(*p.grid, &p.bits);
  return p;
}

std::vector<TupleId> SortedIds(const SkylineWindow& window) {
  std::vector<TupleId> ids = window.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(GpmrsTest, ComputesExactSkyline) {
  const Prepared p = Prepare(data::GenerateAntiCorrelated(2500, 3, 71), 4);
  mr::EngineOptions engine;
  engine.num_map_tasks = 5;
  engine.num_reducers = 4;
  auto run = RunGpmrsJob(p.data, *p.grid, p.bits,
                         GroupMergeStrategy::kComputationCost, engine);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(ExplainSkylineMismatch(*p.data, run->skyline.ids()), "");
}

class GpmrsConfigProperty
    : public ::testing::TestWithParam<
          std::tuple<int /*mappers*/, int /*reducers*/,
                     GroupMergeStrategy>> {};

TEST_P(GpmrsConfigProperty, SkylineInvariantUnderConfiguration) {
  const auto& [mappers, reducers, strategy] = GetParam();
  static const Dataset dataset = data::GenerateAntiCorrelated(1500, 3, 73);
  const Prepared p = Prepare(Dataset(dataset), 3);
  mr::EngineOptions engine;
  engine.num_map_tasks = mappers;
  engine.num_reducers = reducers;
  auto run = RunGpmrsJob(p.data, *p.grid, p.bits, strategy, engine);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(ExplainSkylineMismatch(*p.data, run->skyline.ids()), "");
  EXPECT_EQ(run->metrics.reduce_tasks.size(),
            static_cast<size_t>(reducers));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpmrsConfigProperty,
    ::testing::Combine(
        ::testing::Values(1, 4, 9),
        ::testing::Values(1, 2, 5, 17),
        ::testing::Values(GroupMergeStrategy::kRoundRobin,
                          GroupMergeStrategy::kComputationCost,
                          GroupMergeStrategy::kCommunicationCost,
                          GroupMergeStrategy::kBalanced)),
    ([](const auto& info) {
      const auto& [m, r, s] = info.param;
      std::string name = "m";
      name += std::to_string(m);
      name += "_r";
      name += std::to_string(r);
      name += "_";
      name += GroupMergeStrategyName(s);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    }));

TEST(GpmrsTest, MatchesGpsrsResult) {
  // The two algorithms must produce identical skylines; MR-GPMRS merely
  // parallelizes the reduce side.
  const Prepared p = Prepare(data::GenerateIndependent(2000, 4, 79), 3);
  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  engine.num_reducers = 6;
  auto gpmrs = RunGpmrsJob(p.data, *p.grid, p.bits,
                           GroupMergeStrategy::kComputationCost, engine);
  ASSERT_TRUE(gpmrs.ok());
  const std::vector<TupleId> expected = ReferenceSkyline(*p.data);
  EXPECT_TRUE(SameIdSet(SortedIds(gpmrs->skyline), expected));
}

TEST(GpmrsTest, NoDuplicateOutputsWithReplicatedPartitions) {
  // Anti-correlated data creates many overlapping groups; replicated
  // partitions must be output by exactly one reducer (Section 5.4.2).
  const Prepared p = Prepare(data::GenerateAntiCorrelated(2000, 2, 83), 6);
  mr::EngineOptions engine;
  engine.num_map_tasks = 3;
  engine.num_reducers = 3;
  auto run = RunGpmrsJob(p.data, *p.grid, p.bits,
                         GroupMergeStrategy::kComputationCost, engine);
  ASSERT_TRUE(run.ok());
  std::vector<TupleId> ids = run->skyline.ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "duplicate skyline tuples emitted";
  EXPECT_EQ(ExplainSkylineMismatch(*p.data, run->skyline.ids()), "");
}

TEST(GpmrsTest, MoreReducersThanGroupsStillCorrect) {
  // A dataset collapsing into very few groups.
  Dataset dataset(2);
  dataset.Append({0.05, 0.05});
  dataset.Append({0.06, 0.04});
  dataset.Append({0.9, 0.9});
  const Prepared p = Prepare(std::move(dataset), 4);
  mr::EngineOptions engine;
  engine.num_reducers = 10;
  auto run = RunGpmrsJob(p.data, *p.grid, p.bits,
                         GroupMergeStrategy::kComputationCost, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(ExplainSkylineMismatch(*p.data, run->skyline.ids()), "");
}

TEST(GpmrsTest, EmptyDataset) {
  const Prepared p = Prepare(Dataset(2), 3);
  mr::EngineOptions engine;
  engine.num_reducers = 4;
  auto run = RunGpmrsJob(p.data, *p.grid, p.bits,
                         GroupMergeStrategy::kComputationCost, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->skyline.empty());
}

TEST(GpmrsTest, ReducerWorkIsDistributed) {
  // With enough groups and anti-correlated data, more than one reducer
  // must receive real work.
  const Prepared p = Prepare(data::GenerateAntiCorrelated(3000, 3, 89), 4);
  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  engine.num_reducers = 4;
  auto run = RunGpmrsJob(p.data, *p.grid, p.bits,
                         GroupMergeStrategy::kComputationCost, engine);
  ASSERT_TRUE(run.ok());
  int reducers_with_input = 0;
  for (const auto& task : run->metrics.reduce_tasks) {
    if (task.input_records > 0) {
      ++reducers_with_input;
    }
  }
  EXPECT_GT(reducers_with_input, 1);
}

TEST(GpmrsTest, CountersPopulated) {
  const Prepared p = Prepare(data::GenerateAntiCorrelated(1000, 3, 97), 3);
  mr::EngineOptions engine;
  engine.num_reducers = 3;
  auto run = RunGpmrsJob(p.data, *p.grid, p.bits,
                         GroupMergeStrategy::kComputationCost, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->metrics.counters.Get(mr::kCounterTupleComparisons), 0);
  EXPECT_GT(run->metrics.counters.Get(mr::kCounterPartitionComparisons), 0);
}

TEST(GpmrsTest, RejectsBadInputs) {
  const Prepared p = Prepare(data::GenerateIndependent(100, 2, 101), 3);
  mr::EngineOptions engine;
  DynamicBitset wrong_size(4);
  EXPECT_FALSE(RunGpmrsJob(p.data, *p.grid, wrong_size,
                           GroupMergeStrategy::kComputationCost, engine)
                   .ok());
  EXPECT_FALSE(RunGpmrsJob(nullptr, *p.grid, p.bits,
                           GroupMergeStrategy::kComputationCost, engine)
                   .ok());
}

}  // namespace
}  // namespace skymr::core
