#include "src/core/runner.h"

#include <algorithm>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr {
namespace {

RunnerConfig BaseConfig(Algorithm algorithm) {
  RunnerConfig config;
  config.algorithm = algorithm;
  config.engine.num_map_tasks = 4;
  config.engine.num_reducers = 4;
  config.ppd.max_candidate = 8;  // Keep candidate sweeps cheap in tests.
  return config;
}

class RunnerAlgorithmProperty
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, data::Distribution>> {};

TEST_P(RunnerAlgorithmProperty, ComputesExactSkyline) {
  const auto& [algorithm, dist] = GetParam();
  data::GeneratorConfig gen;
  gen.distribution = dist;
  gen.cardinality = 1500;
  gen.dim = 3;
  gen.seed = 4242;
  const Dataset data = std::move(data::Generate(gen)).value();
  auto result = ComputeSkyline(data, BaseConfig(algorithm));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ExplainSkylineMismatch(data, result->SkylineIds()), "")
      << AlgorithmName(algorithm);
  EXPECT_GT(result->wall_seconds, 0.0);
  EXPECT_GT(result->modeled_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunnerAlgorithmProperty,
    ::testing::Combine(
        ::testing::Values(Algorithm::kMrGpsrs, Algorithm::kMrGpmrs,
                          Algorithm::kMrBnl, Algorithm::kMrAngle,
                          Algorithm::kHybrid, Algorithm::kSkyMr),
        ::testing::Values(data::Distribution::kIndependent,
                          data::Distribution::kAntiCorrelated,
                          data::Distribution::kCorrelated)),
    ([](const auto& info) {
      const auto& [algorithm, dist] = info.param;
      std::string name = std::string(AlgorithmName(algorithm)) + "_" +
                         data::DistributionName(dist);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    }));

TEST(RunnerTest, GridAlgorithmsReportTwoJobs) {
  const Dataset data = data::GenerateIndependent(800, 2, 5);
  auto result = ComputeSkyline(data, BaseConfig(Algorithm::kMrGpmrs));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->jobs.size(), 2u);  // Bitstring job + skyline job.
  EXPECT_GT(result->ppd, 1u);
  EXPECT_GT(result->nonempty_partitions, 0u);
}

TEST(RunnerTest, BaselinesReportOneJob) {
  const Dataset data = data::GenerateIndependent(800, 2, 5);
  for (const Algorithm algorithm :
       {Algorithm::kMrBnl, Algorithm::kMrAngle}) {
    auto result = ComputeSkyline(data, BaseConfig(algorithm));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->jobs.size(), 1u);
    EXPECT_EQ(result->ppd, 0u);
  }
}

TEST(RunnerTest, ExplicitPpdHonored) {
  const Dataset data = data::GenerateIndependent(800, 2, 5);
  RunnerConfig config = BaseConfig(Algorithm::kMrGpsrs);
  config.ppd.explicit_ppd = 6;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ppd, 6u);
}

TEST(RunnerTest, HybridResolvesAlgorithm) {
  const Dataset indep = data::GenerateIndependent(4000, 3, 9);
  auto indep_result = ComputeSkyline(indep, BaseConfig(Algorithm::kHybrid));
  ASSERT_TRUE(indep_result.ok());
  EXPECT_EQ(indep_result->algorithm_used, Algorithm::kMrGpsrs);

  const Dataset anti = data::GenerateAntiCorrelated(4000, 4, 9);
  auto anti_result = ComputeSkyline(anti, BaseConfig(Algorithm::kHybrid));
  ASSERT_TRUE(anti_result.ok());
  EXPECT_EQ(anti_result->algorithm_used, Algorithm::kMrGpmrs);
  EXPECT_EQ(ExplainSkylineMismatch(anti, anti_result->SkylineIds()), "");
}

TEST(RunnerTest, EmptyDataset) {
  const Dataset data(3);
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
        Algorithm::kMrAngle, Algorithm::kSkyMr}) {
    auto result = ComputeSkyline(data, BaseConfig(algorithm));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm) << ": "
                             << result.status();
    EXPECT_TRUE(result->skyline.empty());
  }
}

TEST(RunnerTest, ComputedBoundsModeWorks) {
  // Data outside the unit cube must still be partitioned correctly when
  // unit_bounds is off.
  Dataset data(2);
  data.Append({10.0, 20.0});
  data.Append({12.0, 18.0});
  data.Append({15.0, 25.0});  // Dominated.
  RunnerConfig config = BaseConfig(Algorithm::kMrGpsrs);
  config.unit_bounds = false;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SameIdSet(result->SkylineIds(), {0, 1}));
}

TEST(RunnerTest, ModeledSecondsUsesClusterModel) {
  const Dataset data = data::GenerateIndependent(500, 2, 5);
  RunnerConfig slow = BaseConfig(Algorithm::kMrGpsrs);
  slow.cluster.job_startup_seconds = 100.0;
  RunnerConfig fast = BaseConfig(Algorithm::kMrGpsrs);
  fast.cluster.job_startup_seconds = 1.0;
  auto slow_result = ComputeSkyline(data, slow);
  auto fast_result = ComputeSkyline(data, fast);
  ASSERT_TRUE(slow_result.ok());
  ASSERT_TRUE(fast_result.ok());
  EXPECT_GT(slow_result->modeled_seconds,
            fast_result->modeled_seconds + 150.0);
}

TEST(RunnerTest, PoolThreadCountContradictionIsInvalidArgument) {
  // An explicit engine.num_threads that disagrees with the external
  // pool's size used to be silently ignored (the pool won); Validate now
  // rejects the contradiction up front.
  const Dataset data = data::GenerateIndependent(300, 2, 5);
  ThreadPool pool(2);
  RunnerConfig config = BaseConfig(Algorithm::kMrGpsrs);
  config.pool = &pool;
  config.engine.num_threads = 3;
  EXPECT_FALSE(config.Validate().ok());
  auto result = ComputeSkyline(data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("contradicts"),
            std::string::npos)
      << result.status();

  // Matching the pool's size, or leaving num_threads 0, stays valid.
  config.engine.num_threads = 2;
  EXPECT_TRUE(config.Validate().ok());
  config.engine.num_threads = 0;
  EXPECT_TRUE(config.Validate().ok());
  auto ok_result = ComputeSkyline(data, config);
  ASSERT_TRUE(ok_result.ok()) << ok_result.status();
  EXPECT_EQ(ExplainSkylineMismatch(data, ok_result->SkylineIds()), "");

  // A num_threads without an external pool sizes the private pool and
  // was always legal.
  config.pool = nullptr;
  config.engine.num_threads = 3;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(RunnerTest, AlgorithmNamesRoundTrip) {
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
        Algorithm::kMrAngle, Algorithm::kHybrid, Algorithm::kSkyMr}) {
    auto parsed = ParseAlgorithm(AlgorithmName(algorithm));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), algorithm);
  }
  EXPECT_FALSE(ParseAlgorithm("mr-quadtree").ok());
}

}  // namespace
}  // namespace skymr
