#include "src/core/messages.h"

#include <gtest/gtest.h>

namespace skymr::core {
namespace {

SkylineWindow MakeWindow(std::vector<std::pair<TupleId, std::vector<double>>>
                             tuples,
                         size_t dim) {
  SkylineWindow window(dim);
  for (const auto& [id, row] : tuples) {
    window.AppendUnchecked(row.data(), id);
  }
  return window;
}

TEST(MessagesSerdeTest, PartitionSkylineRoundTrip) {
  PartitionSkyline part;
  part.cell = 42;
  part.window = MakeWindow({{1, {0.1, 0.9}}, {2, {0.9, 0.1}}}, 2);
  const auto round =
      DeserializeFromBytes<PartitionSkyline>(SerializeToBytes(part));
  EXPECT_EQ(round, part);
}

TEST(MessagesSerdeTest, LocalSkylineSetRoundTrip) {
  LocalSkylineSet set;
  set.parts.push_back({7, MakeWindow({{3, {0.5, 0.5}}}, 2)});
  set.parts.push_back({9, SkylineWindow(2)});
  const auto round =
      DeserializeFromBytes<LocalSkylineSet>(SerializeToBytes(set));
  EXPECT_EQ(round, set);
}

TEST(MessagesSerdeTest, GroupPayloadRoundTrip) {
  GroupPayload payload;
  payload.reducer_group = 3;
  payload.responsible = {1, 5, 9};
  payload.parts.push_back({5, MakeWindow({{0, {0.2, 0.3, 0.4}}}, 3)});
  const auto round =
      DeserializeFromBytes<GroupPayload>(SerializeToBytes(payload));
  EXPECT_EQ(round.reducer_group, 3u);
  EXPECT_EQ(round.responsible, payload.responsible);
  EXPECT_EQ(round.parts, payload.parts);
}

TEST(MergePartsTest, MergesPerCellWithDominance) {
  CellWindowMap windows;
  DominanceCounter counter;
  // Mapper 1: cell 4 holds {0.5, 0.5}.
  MergeParts({{4, MakeWindow({{0, {0.5, 0.5}}}, 2)}}, 2, &windows,
             &counter);
  // Mapper 2: cell 4 holds {0.4, 0.4} (dominates) and cell 7 a tuple.
  MergeParts({{4, MakeWindow({{1, {0.4, 0.4}}}, 2)},
              {7, MakeWindow({{2, {0.1, 0.8}}}, 2)}},
             2, &windows, &counter);
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[4].size(), 1u);
  EXPECT_EQ(windows[4].IdAt(0), 1u);
  EXPECT_EQ(windows[7].size(), 1u);
  EXPECT_GT(counter.count(), 0u);
}

TEST(MergePartsTest, IncomparableTuplesAccumulate) {
  CellWindowMap windows;
  MergeParts({{0, MakeWindow({{0, {0.1, 0.9}}}, 2)}}, 2, &windows, nullptr);
  MergeParts({{0, MakeWindow({{1, {0.9, 0.1}}}, 2)}}, 2, &windows, nullptr);
  EXPECT_EQ(windows[0].size(), 2u);
}

TEST(UnionWindowsTest, ConcatenatesInCellOrder) {
  CellWindowMap windows;
  windows.emplace(9, MakeWindow({{5, {0.9, 0.1}}}, 2));
  windows.emplace(2, MakeWindow({{3, {0.1, 0.9}}}, 2));
  const SkylineWindow out = UnionWindows(windows, 2);
  ASSERT_EQ(out.size(), 2u);
  // std::map iterates ascending: cell 2 first.
  EXPECT_EQ(out.IdAt(0), 3u);
  EXPECT_EQ(out.IdAt(1), 5u);
}

TEST(UnionWindowsTest, EmptyMap) {
  EXPECT_TRUE(UnionWindows({}, 3).empty());
}

}  // namespace
}  // namespace skymr::core
