#include "src/core/grid.h"

#include <set>

#include <gtest/gtest.h>

namespace skymr::core {
namespace {

Grid MakeGrid(size_t dim, uint32_t ppd) {
  return std::move(Grid::Create(dim, ppd, Bounds::UnitCube(dim))).value();
}

TEST(GridTest, CreateValidation) {
  EXPECT_FALSE(Grid::Create(0, 3, Bounds::UnitCube(0)).ok());
  EXPECT_FALSE(Grid::Create(2, 0, Bounds::UnitCube(2)).ok());
  EXPECT_FALSE(Grid::Create(2, 3, Bounds::UnitCube(3)).ok());  // Mismatch.
  EXPECT_FALSE(Grid::Create(10, 64, Bounds::UnitCube(10)).ok());  // 64^10.
  EXPECT_TRUE(Grid::Create(2, 3, Bounds::UnitCube(2)).ok());
}

TEST(GridTest, CreateRespectsCellBudget) {
  EXPECT_TRUE(Grid::Create(2, 4, Bounds::UnitCube(2), 16).ok());
  EXPECT_FALSE(Grid::Create(2, 5, Bounds::UnitCube(2), 16).ok());
}

TEST(GridTest, NumCells) {
  EXPECT_EQ(MakeGrid(2, 3).num_cells(), 9u);
  EXPECT_EQ(MakeGrid(3, 4).num_cells(), 64u);
  EXPECT_EQ(MakeGrid(1, 7).num_cells(), 7u);
}

TEST(GridTest, ColumnMajorIndexRoundTrip) {
  const Grid grid = MakeGrid(3, 5);
  for (CellId cell = 0; cell < grid.num_cells(); ++cell) {
    uint32_t coords[3];
    grid.CoordsOf(cell, coords);
    EXPECT_EQ(grid.IndexOf(coords), cell);
    for (const uint32_t c : coords) {
      EXPECT_LT(c, 5u);
    }
  }
}

TEST(GridTest, IndexFormulaMatchesPaper) {
  // Column-major: index = sum_k coord[k] * n^k.
  const Grid grid = MakeGrid(2, 3);
  const uint32_t coords[2] = {1, 2};  // 1 + 2*3 = 7.
  EXPECT_EQ(grid.IndexOf(coords), 7u);
}

TEST(GridTest, CellOfInteriorPoints) {
  const Grid grid = MakeGrid(2, 3);
  const double p[] = {0.1, 0.1};
  EXPECT_EQ(grid.CellOf(p), 0u);
  const double q[] = {0.5, 0.5};  // Coords (1,1) -> 4.
  EXPECT_EQ(grid.CellOf(q), 4u);
  const double r[] = {0.9, 0.1};  // Coords (2,0) -> 2.
  EXPECT_EQ(grid.CellOf(r), 2u);
}

TEST(GridTest, CellOfBoundariesHalfOpen) {
  const Grid grid = MakeGrid(1, 4);
  const double exact[] = {0.25};  // On a cell boundary -> upper cell.
  EXPECT_EQ(grid.CellOf(exact), 1u);
  const double top[] = {1.0};  // Domain max clamps into the last cell.
  EXPECT_EQ(grid.CellOf(top), 3u);
  const double below[] = {-0.5};  // Below-range clamps to the first cell.
  EXPECT_EQ(grid.CellOf(below), 0u);
  const double above[] = {2.0};
  EXPECT_EQ(grid.CellOf(above), 3u);
}

TEST(GridTest, CellOfDegenerateBounds) {
  Bounds bounds;
  bounds.lo = {0.5, 0.0};
  bounds.hi = {0.5, 1.0};  // First dimension collapsed.
  const Grid grid =
      std::move(Grid::Create(2, 3, std::move(bounds))).value();
  const double p[] = {0.5, 0.9};
  uint32_t coords[2];
  grid.CoordsOf(grid.CellOf(p), coords);
  EXPECT_EQ(coords[0], 0u);
  EXPECT_EQ(coords[1], 2u);
}

TEST(GridTest, CellDominanceFigure2) {
  // Figure 2: a 3x3 grid where p4 = center. p4.DR = {p8}.
  const Grid grid = MakeGrid(2, 3);
  EXPECT_TRUE(grid.CellDominates(4, 8));
  EXPECT_FALSE(grid.CellDominates(4, 5));
  EXPECT_FALSE(grid.CellDominates(4, 7));
  EXPECT_FALSE(grid.CellDominates(4, 4));
  EXPECT_FALSE(grid.CellDominates(8, 4));
  // p0 = origin corner dominates the strict interior and beyond.
  EXPECT_TRUE(grid.CellDominates(0, 4));
  EXPECT_TRUE(grid.CellDominates(0, 8));
  EXPECT_FALSE(grid.CellDominates(0, 1));
  EXPECT_FALSE(grid.CellDominates(0, 3));
}

TEST(GridTest, AdrFigure2) {
  // Figure 2: p4.ADR = {p0, p1, p3}.
  const Grid grid = MakeGrid(2, 3);
  std::set<CellId> adr;
  for (CellId q = 0; q < grid.num_cells(); ++q) {
    if (grid.InAdrOf(4, q)) {
      adr.insert(q);
    }
  }
  EXPECT_EQ(adr, (std::set<CellId>{0, 1, 3}));
}

TEST(GridTest, AdrOfOriginIsEmpty) {
  const Grid grid = MakeGrid(3, 4);
  for (CellId q = 0; q < grid.num_cells(); ++q) {
    EXPECT_FALSE(grid.InAdrOf(0, q));
  }
}

TEST(GridTest, AdrCoordsMatchesCellVersion) {
  const Grid grid = MakeGrid(2, 4);
  for (CellId p = 0; p < grid.num_cells(); ++p) {
    uint32_t pc[2];
    grid.CoordsOf(p, pc);
    for (CellId q = 0; q < grid.num_cells(); ++q) {
      uint32_t qc[2];
      grid.CoordsOf(q, qc);
      EXPECT_EQ(grid.InAdrOf(p, q), grid.InAdrOfCoords(pc, qc))
          << "p=" << p << " q=" << q;
    }
  }
}

TEST(GridTest, AdrSizeIsCoordinateProductMinusOne) {
  // Equation 6: rho_dom = prod coords(1-based) - 1. Paper example:
  // p2 of the 3x3 grid has coords (1,3) -> 1*3 - 1 = 2 comparisons.
  const Grid grid = MakeGrid(2, 3);
  EXPECT_EQ(grid.AdrSize(2), 2u);
  EXPECT_EQ(grid.AdrSize(0), 0u);
  EXPECT_EQ(grid.AdrSize(4), 3u);  // (2,2): 4-1.
  EXPECT_EQ(grid.AdrSize(8), 8u);  // (3,3): 9-1.
}

TEST(GridTest, AdrSizeCountsAdrMembers) {
  const Grid grid = MakeGrid(3, 3);
  for (CellId p = 0; p < grid.num_cells(); ++p) {
    uint64_t count = 0;
    for (CellId q = 0; q < grid.num_cells(); ++q) {
      count += grid.InAdrOf(p, q) ? 1 : 0;
    }
    EXPECT_EQ(grid.AdrSize(p), count) << "p=" << p;
  }
}

TEST(GridTest, CornersMatchDefinition) {
  const Grid grid = MakeGrid(2, 4);
  const uint32_t coords[2] = {1, 2};
  const CellId cell = grid.IndexOf(coords);
  const std::vector<double> lo = grid.MinCorner(cell);
  const std::vector<double> hi = grid.MaxCorner(cell);
  EXPECT_DOUBLE_EQ(lo[0], 0.25);
  EXPECT_DOUBLE_EQ(lo[1], 0.50);
  EXPECT_DOUBLE_EQ(hi[0], 0.50);
  EXPECT_DOUBLE_EQ(hi[1], 0.75);
}

TEST(GridTest, DominanceIsCornerDominance) {
  // Definition 2: p_i dominates p_j iff p_i.max dominates p_j.min. The
  // integer-coordinate implementation must agree with corner arithmetic
  // for strictly separated cells.
  const Grid grid = MakeGrid(2, 4);
  for (CellId a = 0; a < grid.num_cells(); ++a) {
    const std::vector<double> a_max = grid.MaxCorner(a);
    for (CellId b = 0; b < grid.num_cells(); ++b) {
      const std::vector<double> b_min = grid.MinCorner(b);
      bool corner_dominates = true;
      for (size_t k = 0; k < 2; ++k) {
        if (a_max[k] > b_min[k]) {
          corner_dominates = false;
        }
      }
      EXPECT_EQ(grid.CellDominates(a, b), corner_dominates && a != b)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(GridTest, ForEachDominatedCellEnumeratesDr) {
  const Grid grid = MakeGrid(2, 3);
  std::set<CellId> dr;
  grid.ForEachDominatedCell(0, [&dr](CellId c) { dr.insert(c); });
  EXPECT_EQ(dr, (std::set<CellId>{4, 5, 7, 8}));
  dr.clear();
  grid.ForEachDominatedCell(4, [&dr](CellId c) { dr.insert(c); });
  EXPECT_EQ(dr, (std::set<CellId>{8}));
  dr.clear();
  grid.ForEachDominatedCell(8, [&dr](CellId c) { dr.insert(c); });
  EXPECT_TRUE(dr.empty());
  // Border cell: DR empty because one dimension cannot grow.
  dr.clear();
  grid.ForEachDominatedCell(2, [&dr](CellId c) { dr.insert(c); });
  EXPECT_TRUE(dr.empty());
}

TEST(GridTest, ForEachDominatedMatchesCellDominates) {
  const Grid grid = MakeGrid(3, 3);
  for (CellId p = 0; p < grid.num_cells(); ++p) {
    std::set<CellId> enumerated;
    grid.ForEachDominatedCell(
        p, [&enumerated](CellId c) { enumerated.insert(c); });
    std::set<CellId> expected;
    for (CellId q = 0; q < grid.num_cells(); ++q) {
      if (grid.CellDominates(p, q)) {
        expected.insert(q);
      }
    }
    EXPECT_EQ(enumerated, expected) << "p=" << p;
  }
}

TEST(GridTest, PpdOneHasNoDominance) {
  const Grid grid = MakeGrid(3, 1);
  EXPECT_EQ(grid.num_cells(), 1u);
  EXPECT_FALSE(grid.CellDominates(0, 0));
  EXPECT_FALSE(grid.InAdrOf(0, 0));
}

}  // namespace
}  // namespace skymr::core
