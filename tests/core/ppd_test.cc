#include "src/core/ppd.h"

#include <gtest/gtest.h>

#include "src/common/math_util.h"

namespace skymr::core {
namespace {

TEST(CandidatePpdsTest, SeriesRunsFrom2ToNm) {
  PpdOptions options;
  // c = 10^6, d = 2 -> n_m = 1000, capped at max_candidate = 64.
  const std::vector<uint32_t> candidates =
      CandidatePpds(1000000, 2, options);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front(), 2u);
  EXPECT_EQ(candidates.back(), 64u);
  EXPECT_EQ(candidates.size(), 63u);
}

TEST(CandidatePpdsTest, NmBoundsSeriesForHighDim) {
  PpdOptions options;
  // c = 2*10^6, d = 10 -> n_m = floor(c^0.1) = 4.
  const std::vector<uint32_t> candidates =
      CandidatePpds(2000000, 10, options);
  EXPECT_EQ(candidates, (std::vector<uint32_t>{2, 3, 4}));
}

TEST(CandidatePpdsTest, CellBudgetTruncates) {
  PpdOptions options;
  options.max_cells = 1000;  // 2^10 = 1024 > 1000 for d = 10...
  const std::vector<uint32_t> candidates =
      CandidatePpds(2000000, 10, options);
  EXPECT_TRUE(candidates.empty());  // Even PPD 2 busts the budget.

  options.max_cells = 100000;  // 3^10 = 59049 fits, 4^10 doesn't.
  const std::vector<uint32_t> c2 = CandidatePpds(2000000, 10, options);
  EXPECT_EQ(c2, (std::vector<uint32_t>{2, 3}));
}

TEST(CandidatePpdsTest, TinyCardinalityFallsBackToPpd2) {
  PpdOptions options;
  // c = 3 < 2^2: n_m = 1, so the series would be empty.
  const std::vector<uint32_t> candidates = CandidatePpds(3, 2, options);
  EXPECT_EQ(candidates, (std::vector<uint32_t>{2}));
}

TEST(CandidatePpdsTest, ExplicitPpdShortCircuits) {
  PpdOptions options;
  options.explicit_ppd = 7;
  EXPECT_EQ(CandidatePpds(1000000, 2, options),
            (std::vector<uint32_t>{7}));
}

TEST(SelectPpdTest, PaperLiteralPicksFinestFullyOccupiedGrid) {
  PpdOptions options;
  options.strategy = PpdStrategy::kPaperLiteral;
  // Occupancies: PPD 2 and 3 fully occupied (diff 0), PPD 4 has empties.
  const std::vector<PpdOccupancy> occupancies = {
      {2, 4}, {3, 9}, {4, 12}};
  EXPECT_EQ(SelectPpd(options, 1000, 2, occupancies), 3u);
}

TEST(SelectPpdTest, PaperLiteralArgminWhenNoExactTie) {
  PpdOptions options;
  options.strategy = PpdStrategy::kPaperLiteral;
  // c=1000, d=2. PPD 2: rho=3 -> |333.3-250|=83.3.
  // PPD 3: rho=8 -> |125-111.1|=13.9. PPD 4: rho=10 -> |100-62.5|=37.5.
  const std::vector<PpdOccupancy> occupancies = {{2, 3}, {3, 8}, {4, 10}};
  EXPECT_EQ(SelectPpd(options, 1000, 2, occupancies), 3u);
}

TEST(SelectPpdTest, TargetTppPicksClosestEstimate) {
  PpdOptions options;
  options.strategy = PpdStrategy::kTargetTpp;
  options.target_tpp = 100.0;
  // Estimated TPP: 1000/4=250, 1000/9=111, 1000/14=71.
  const std::vector<PpdOccupancy> occupancies = {{2, 4}, {3, 9}, {4, 14}};
  EXPECT_EQ(SelectPpd(options, 1000, 2, occupancies), 3u);
}

TEST(SelectPpdTest, ZeroCardinalityPicksFirst) {
  PpdOptions options;
  const std::vector<PpdOccupancy> occupancies = {{2, 0}, {3, 0}};
  EXPECT_EQ(SelectPpd(options, 0, 2, occupancies), 2u);
}

TEST(SelectPpdTest, EmptyOccupancyRhoTreatedAsWorst) {
  PpdOptions options;
  options.strategy = PpdStrategy::kTargetTpp;
  options.target_tpp = 50.0;
  const std::vector<PpdOccupancy> occupancies = {{2, 0}, {3, 20}};
  EXPECT_EQ(SelectPpd(options, 1000, 2, occupancies), 3u);
}

TEST(SelectPpdTest, SingleCandidateAlwaysWins) {
  PpdOptions options;
  const std::vector<PpdOccupancy> occupancies = {{5, 100}};
  EXPECT_EQ(SelectPpd(options, 12345, 3, occupancies), 5u);
}

TEST(PpdStrategyTest, Names) {
  EXPECT_STREQ(PpdStrategyName(PpdStrategy::kPaperLiteral),
               "paper-literal");
  EXPECT_STREQ(PpdStrategyName(PpdStrategy::kTargetTpp), "target-tpp");
}

TEST(CandidatePpdsTest, Equation4Consistency) {
  // Equation 4: n = (c / TPP)^(1/d). With TPP = 1 the candidate ceiling
  // n_m = floor(c^(1/d)) must satisfy n_m^d <= c.
  PpdOptions options;
  options.max_candidate = 1000000;
  options.max_cells = uint64_t{1} << 40;
  for (const uint64_t c : {100u, 5000u, 250000u}) {
    for (const size_t d : {size_t{2}, size_t{3}, size_t{5}}) {
      const auto candidates = CandidatePpds(c, d, options);
      ASSERT_FALSE(candidates.empty());
      const uint64_t nm = candidates.back();
      if (nm > 2) {
        EXPECT_LE(PowU64(nm, static_cast<uint32_t>(d)), c);
        EXPECT_GT(PowU64(nm + 1, static_cast<uint32_t>(d)), c);
      }
    }
  }
}

}  // namespace
}  // namespace skymr::core
