#include "src/core/compare_partitions.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/local/bnl.h"
#include "src/relation/skyline_verify.h"

namespace skymr::core {
namespace {

Grid MakeGrid(size_t dim, uint32_t ppd) {
  return std::move(Grid::Create(dim, ppd, Bounds::UnitCube(dim))).value();
}

SkylineWindow OneTuple(TupleId id, std::vector<double> row) {
  SkylineWindow window(row.size());
  window.AppendUnchecked(row.data(), id);
  return window;
}

TEST(CompareAllPartitionsTest, RemovesCrossPartitionFalsePositives) {
  const Grid grid = MakeGrid(2, 3);
  CellWindowMap windows;
  // Cells 0 = (0,0) and 1 = (1,0) are not related by partition dominance
  // (cell 0's max corner does not dominate cell 1's min corner), yet the
  // tuple in cell 0 dominates the tuple in cell 1: exactly the false
  // positive Algorithm 5 removes via the ADR check.
  windows.emplace(0, OneTuple(0, {0.2, 0.2}));
  windows.emplace(1, OneTuple(1, {0.4, 0.25}));  // Cell (1,0).
  const uint64_t comparisons = CompareAllPartitions(grid, &windows, nullptr);
  // Cell 1's ADR contains cell 0: one comparison; cell 0's ADR is empty.
  EXPECT_EQ(comparisons, 1u);
  EXPECT_EQ(windows[0].size(), 1u);
  EXPECT_EQ(windows[1].size(), 0u);
}

TEST(CompareAllPartitionsTest, IncomparableTuplesSurvive) {
  const Grid grid = MakeGrid(2, 3);
  CellWindowMap windows;
  windows.emplace(0, OneTuple(0, {0.3, 0.1}));
  windows.emplace(3, OneTuple(1, {0.1, 0.5}));  // Cell (0,1).
  CompareAllPartitions(grid, &windows, nullptr);
  EXPECT_EQ(windows[0].size(), 1u);
  EXPECT_EQ(windows[3].size(), 1u);
}

TEST(CompareAllPartitionsTest, ComparisonCountMatchesAdrPairs) {
  const Grid grid = MakeGrid(2, 3);
  CellWindowMap windows;
  for (const CellId cell : {0, 1, 3, 4}) {
    windows.emplace(cell, SkylineWindow(2));
  }
  // ADR pairs among {0,1,3,4}: 1->{0}, 3->{0}, 4->{0,1,3}. Total 5.
  EXPECT_EQ(CompareAllPartitions(grid, &windows, nullptr), 5u);
}

TEST(CompareAllPartitionsTest, EmptyMapZeroComparisons) {
  const Grid grid = MakeGrid(2, 3);
  CellWindowMap windows;
  EXPECT_EQ(CompareAllPartitions(grid, &windows, nullptr), 0u);
}

TEST(CompareAllPartitionsTest, SinglePartitionZeroComparisons) {
  const Grid grid = MakeGrid(2, 3);
  CellWindowMap windows;
  windows.emplace(4, OneTuple(0, {0.5, 0.5}));
  EXPECT_EQ(CompareAllPartitions(grid, &windows, nullptr), 0u);
  EXPECT_EQ(windows[4].size(), 1u);
}

TEST(CompareAllPartitionsTest, ProducesGlobalSkylineFromCellWindows) {
  // Build per-cell local skylines for the full dataset; after
  // CompareAllPartitions the union must be exactly the global skyline.
  const Dataset dataset = data::GenerateIndependent(1500, 3, 31);
  const Grid grid = MakeGrid(3, 4);
  CellWindowMap windows;
  DominanceCounter counter;
  for (size_t i = 0; i < dataset.size(); ++i) {
    const auto id = static_cast<TupleId>(i);
    const CellId cell = grid.CellOf(dataset.RowPtr(id));
    auto [it, inserted] = windows.try_emplace(cell, SkylineWindow(3));
    it->second.Insert(dataset.RowPtr(id), id, &counter);
  }
  CompareAllPartitions(grid, &windows, &counter);
  std::vector<TupleId> ids;
  for (const auto& [cell, window] : windows) {
    ids.insert(ids.end(), window.ids().begin(), window.ids().end());
  }
  EXPECT_EQ(ExplainSkylineMismatch(dataset, ids), "");
  EXPECT_GT(counter.count(), 0u);
}

TEST(CompareAllPartitionsTest, CountsTupleChecksIntoCounter) {
  const Grid grid = MakeGrid(2, 2);
  CellWindowMap windows;
  windows.emplace(0, OneTuple(0, {0.2, 0.2}));
  windows.emplace(1, OneTuple(1, {0.6, 0.4}));
  DominanceCounter counter;
  CompareAllPartitions(grid, &windows, &counter);
  EXPECT_EQ(counter.count(), 1u);
}

}  // namespace
}  // namespace skymr::core
