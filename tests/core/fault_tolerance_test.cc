// Pipeline-level fault tolerance: exact skylines under seeded chaos,
// GPMRS -> GPSRS degradation, bitstring-phase checkpoint/resume, and the
// hardened ComputeSkyline entry point (Status errors, never exceptions).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/checkpoint.h"
#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr {
namespace {

Dataset TestData() {
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kAntiCorrelated;
  gen.cardinality = 2000;
  gen.dim = 3;
  gen.seed = 77;
  return std::move(data::Generate(gen)).value();
}

RunnerConfig BaseConfig(Algorithm algorithm) {
  RunnerConfig config;
  config.algorithm = algorithm;
  config.engine.num_map_tasks = 4;
  config.engine.num_reducers = 4;
  config.engine.retry_backoff_base_ms = 0.0;  // Keep tests fast.
  config.ppd.max_candidate = 8;
  return config;
}

RunnerConfig ChaosConfig(Algorithm algorithm, uint64_t seed) {
  RunnerConfig config = BaseConfig(algorithm);
  config.engine.max_task_attempts = 8;
  config.engine.chaos.seed = seed;
  config.engine.chaos.crash_rate = 0.2;
  return config;
}

// ---------------------------------------------------------------------
// Exactness and determinism under injected crashes.
// ---------------------------------------------------------------------

class ChaosAlgorithmProperty : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ChaosAlgorithmProperty, ExactAndBitIdenticalUnderCrashChaos) {
  const Algorithm algorithm = GetParam();
  const Dataset data = TestData();
  const RunnerConfig config = ChaosConfig(algorithm, 1234);

  auto first = ComputeSkyline(data, config);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(ExplainSkylineMismatch(data, first->SkylineIds()), "")
      << AlgorithmName(algorithm);

  auto second = ComputeSkyline(data, config);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->SkylineIds(), second->SkylineIds());

  // The injected-fault totals are part of the deterministic contract.
  int64_t crashes_first = 0;
  int64_t crashes_second = 0;
  for (const auto& job : first->jobs) {
    crashes_first += job.counters.Get("mr.chaos_crashes_injected");
  }
  for (const auto& job : second->jobs) {
    crashes_second += job.counters.Get("mr.chaos_crashes_injected");
  }
  EXPECT_EQ(crashes_first, crashes_second);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosAlgorithmProperty,
                         ::testing::Values(Algorithm::kMrGpsrs,
                                           Algorithm::kMrGpmrs,
                                           Algorithm::kMrBnl,
                                           Algorithm::kMrAngle),
                         [](const auto& info) {
                           std::string name = AlgorithmName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// The BBS kernel in the mappers must be just as exact and bit-identical
// under crash-retry chaos: a retried map attempt rebuilds the R-tree
// from the same partition ids, and the STR packing is deterministic.
class ChaosBbsProperty : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ChaosBbsProperty, ExactAndBitIdenticalUnderCrashChaos) {
  const Algorithm algorithm = GetParam();
  const Dataset data = TestData();
  RunnerConfig config = ChaosConfig(algorithm, 4321);
  config.local_algorithm = core::LocalAlgorithm::kBbs;

  auto first = ComputeSkyline(data, config);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(ExplainSkylineMismatch(data, first->SkylineIds()), "")
      << AlgorithmName(algorithm);

  auto second = ComputeSkyline(data, config);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->SkylineIds(), second->SkylineIds());

  int64_t crashes_first = 0;
  int64_t crashes_second = 0;
  int64_t bbs_nodes_first = 0;
  int64_t bbs_nodes_second = 0;
  for (const auto& job : first->jobs) {
    crashes_first += job.counters.Get("mr.chaos_crashes_injected");
    bbs_nodes_first += job.counters.Get(core::kCounterBbsNodesVisited);
  }
  for (const auto& job : second->jobs) {
    crashes_second += job.counters.Get("mr.chaos_crashes_injected");
    bbs_nodes_second += job.counters.Get(core::kCounterBbsNodesVisited);
  }
  EXPECT_EQ(crashes_first, crashes_second);
  // The BBS instrumentation is deterministic too, retries included.
  EXPECT_EQ(bbs_nodes_first, bbs_nodes_second);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosBbsProperty,
                         ::testing::Values(Algorithm::kMrGpsrs,
                                           Algorithm::kMrGpmrs),
                         [](const auto& info) {
                           std::string name = AlgorithmName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------
// Graceful degradation: a poisoned GPMRS job falls back to GPSRS.
// ---------------------------------------------------------------------

TEST(FaultToleranceTest, PoisonedGpmrsDegradesToEquivalentGpsrs) {
  const Dataset data = TestData();
  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.engine.max_task_attempts = 2;
  config.engine.chaos.fail_job = "mr-gpmrs";  // Every GPMRS attempt dies.

  auto degraded = ComputeSkyline(data, config);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->algorithm_used, Algorithm::kMrGpsrs);
  EXPECT_EQ(ExplainSkylineMismatch(data, degraded->SkylineIds()), "");

  // The degradation is recorded on the skyline job's counters so reports
  // and the doctor can see it.
  ASSERT_FALSE(degraded->jobs.empty());
  EXPECT_EQ(degraded->jobs.back().counters.Get("mr.degraded_to_gpsrs"), 1);

  // Same answer as an undisturbed GPSRS run.
  auto reference = ComputeSkyline(data, BaseConfig(Algorithm::kMrGpsrs));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(degraded->SkylineIds(), reference->SkylineIds());
}

TEST(FaultToleranceTest, DegradationCanBeDisabled) {
  const Dataset data = TestData();
  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.engine.max_task_attempts = 2;
  config.engine.chaos.fail_job = "mr-gpmrs";
  config.degrade_to_single_reducer = false;

  auto result = ComputeSkyline(data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------
// Phase checkpoint / resume.
// ---------------------------------------------------------------------

TEST(FaultToleranceTest, CheckpointSkipsBitstringPhaseOnResume) {
  const Dataset data = TestData();
  core::PipelineCheckpoint checkpoint;
  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.checkpoint = &checkpoint;

  auto first = ComputeSkyline(data, config);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->resumed_from_checkpoint);
  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_EQ(first->jobs.size(), 2u);  // Bitstring job + skyline job.

  auto second = ComputeSkyline(data, config);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->resumed_from_checkpoint);
  EXPECT_EQ(second->jobs.size(), 1u);  // Bitstring job skipped.
  EXPECT_EQ(first->SkylineIds(), second->SkylineIds());
  EXPECT_EQ(ExplainSkylineMismatch(data, second->SkylineIds()), "");
}

TEST(FaultToleranceTest, CheckpointMissesOnDifferentConfiguration) {
  const Dataset data = TestData();
  core::PipelineCheckpoint checkpoint;
  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.checkpoint = &checkpoint;
  ASSERT_TRUE(ComputeSkyline(data, config).ok());

  // A different grid policy must not resume from the stored phase.
  config.ppd.explicit_ppd = 3;
  auto other = ComputeSkyline(data, config);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_FALSE(other->resumed_from_checkpoint);
  EXPECT_EQ(checkpoint.size(), 2u);
  EXPECT_EQ(ExplainSkylineMismatch(data, other->SkylineIds()), "");
}

TEST(FaultToleranceTest, CheckpointFileRoundTrip) {
  const Dataset data = TestData();
  const std::string path =
      ::testing::TempDir() + "/skymr_checkpoint_roundtrip.bin";
  std::remove(path.c_str());

  core::PipelineCheckpoint writer;
  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.checkpoint = &writer;
  auto first = ComputeSkyline(data, config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(writer.SaveFile(path).ok());

  core::PipelineCheckpoint reader;
  ASSERT_TRUE(reader.LoadFile(path).ok());
  EXPECT_EQ(reader.size(), writer.size());
  config.checkpoint = &reader;
  auto resumed = ComputeSkyline(data, config);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->resumed_from_checkpoint);
  EXPECT_EQ(first->SkylineIds(), resumed->SkylineIds());
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, CheckpointCorruptionRejectedAndStoreUnchanged) {
  // Populate a checkpoint through a real pipeline run, then attack its
  // serialized form: any bit flip or truncation must come back as a clean
  // IoError and leave the loading store untouched.
  const Dataset data = TestData();
  core::PipelineCheckpoint writer;
  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.checkpoint = &writer;
  ASSERT_TRUE(ComputeSkyline(data, config).ok());
  ASSERT_GT(writer.size(), 0u);
  const std::vector<uint8_t> saved = writer.SaveBytes();

  for (const size_t flip : {size_t{0}, saved.size() / 2, saved.size() - 1}) {
    std::vector<uint8_t> corrupt = saved;
    corrupt[flip] ^= 0x10;
    core::PipelineCheckpoint store;
    const Status status =
        store.LoadBytes(corrupt.data(), corrupt.size(), "bit flip");
    if (status.ok()) {
      // A flip inside a stored double can survive decoding; the store
      // must still be fully formed, not half-merged.
      EXPECT_EQ(store.size(), writer.size()) << "flip=" << flip;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kIoError) << "flip=" << flip;
      EXPECT_EQ(store.size(), 0u) << "flip=" << flip;
    }
  }
  for (const size_t keep : {size_t{0}, size_t{3}, saved.size() / 2,
                            saved.size() - 1}) {
    core::PipelineCheckpoint store;
    const Status status = store.LoadBytes(saved.data(), keep, "truncation");
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_EQ(store.size(), 0u) << "keep=" << keep;
  }

  // The intact bytes round-trip: load, re-save, byte-identical.
  core::PipelineCheckpoint reloaded;
  ASSERT_TRUE(reloaded.LoadBytes(saved.data(), saved.size(), "intact").ok());
  EXPECT_EQ(reloaded.size(), writer.size());
  EXPECT_EQ(reloaded.SaveBytes(), saved);
}

TEST(FaultToleranceTest, CorruptCheckpointFileFallsBackToFreshRun) {
  // Operator story: the checkpoint file on disk got mangled. The load
  // reports the corruption; after clearing, the same pipeline still
  // produces the exact skyline from scratch.
  const Dataset data = TestData();
  const std::string path =
      ::testing::TempDir() + "/skymr_checkpoint_corrupt.bin";
  std::remove(path.c_str());

  core::PipelineCheckpoint writer;
  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.checkpoint = &writer;
  auto first = ComputeSkyline(data, config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(writer.SaveFile(path).ok());

  // Truncate the file to two thirds of its length.
  std::vector<uint8_t> bytes = writer.SaveBytes();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size() * 2 / 3));
  }
  core::PipelineCheckpoint reader;
  auto status = reader.LoadFile(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(reader.size(), 0u);

  // Fresh-run fallback: the (empty) store is still a valid checkpoint
  // sink, and the result matches the first run exactly.
  config.checkpoint = &reader;
  auto fresh = ComputeSkyline(data, config);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_FALSE(fresh->resumed_from_checkpoint);
  EXPECT_EQ(fresh->SkylineIds(), first->SkylineIds());
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, CheckpointLoadToleratesMissingRejectsMalformed) {
  core::PipelineCheckpoint checkpoint;
  EXPECT_TRUE(
      checkpoint.LoadFile("/nonexistent/skymr_no_such_checkpoint").ok());

  const std::string path = ::testing::TempDir() + "/skymr_checkpoint_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint file";
  }
  auto status = checkpoint.LoadFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Hardened entry point: invalid configurations come back as Status.
// ---------------------------------------------------------------------

TEST(FaultToleranceTest, InvalidConfigurationsReturnStatusNotThrow) {
  const Dataset data = TestData();

  RunnerConfig config = BaseConfig(Algorithm::kMrGpmrs);
  config.engine.num_reducers = 0;
  auto result = ComputeSkyline(data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  config = BaseConfig(Algorithm::kMrGpmrs);
  config.ppd.explicit_ppd = 1;  // A 1-cell-per-dimension grid cannot prune.
  result = ComputeSkyline(data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  config = BaseConfig(Algorithm::kMrGpmrs);
  config.engine.chaos.crash_rate = 1.0;  // Can never terminate.
  result = ComputeSkyline(data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  config = BaseConfig(Algorithm::kMrGpmrs);
  config.engine.max_task_attempts = 2;
  config.engine.chaos.crash_until_attempt = 2;  // Exhausts the budget.
  result = ComputeSkyline(data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  config = BaseConfig(Algorithm::kMrGpmrs);
  config.engine.speculation_wave_fraction = 2.0;
  result = ComputeSkyline(data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultToleranceTest, ValidateAcceptsTheDefaultConfig) {
  EXPECT_TRUE(RunnerConfig{}.Validate().ok());
  EXPECT_TRUE(BaseConfig(Algorithm::kMrGpmrs).Validate().ok());
}

}  // namespace
}  // namespace skymr
