// Direct specification tests: Equation 2's surviving set and Lemma 1's
// guarantee, checked against brute-force oracles on random inputs.

#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/partition_bitstring.h"
#include "src/data/generator.h"
#include "src/local/bnl.h"

namespace skymr::core {
namespace {

Grid MakeGrid(size_t dim, uint32_t ppd) {
  return std::move(Grid::Create(dim, ppd, Bounds::UnitCube(dim))).value();
}

TEST(PruningSpecTest, SurvivorsAreExactlyTheUndominatedNonEmptyCells) {
  // Equation 2 spec: bit i survives iff p_i is non-empty and no non-empty
  // p_j dominates p_i. Brute force over random occupancy patterns.
  Rng rng(314);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t dim = 1 + rng.NextBounded(4);
    const uint32_t ppd = static_cast<uint32_t>(1 + rng.NextBounded(5));
    const Grid grid = MakeGrid(dim, ppd);
    DynamicBitset bits(grid.num_cells());
    for (size_t i = 0; i < bits.size(); ++i) {
      if (rng.NextBounded(2) == 0) {
        bits.Set(i);
      }
    }
    DynamicBitset pruned = bits;
    PruneDominated(grid, &pruned,
                   trial % 2 == 0 ? PruneMode::kLiteral
                                  : PruneMode::kPrefix);
    for (CellId cell = 0; cell < grid.num_cells(); ++cell) {
      bool expected = bits.Test(cell);
      if (expected) {
        for (size_t dominator = bits.FindFirst(); dominator < bits.size();
             dominator = bits.FindNext(dominator)) {
          if (grid.CellDominates(dominator, cell)) {
            expected = false;
            break;
          }
        }
      }
      ASSERT_EQ(pruned.Test(cell), expected)
          << "trial " << trial << " cell " << cell << " dim " << dim
          << " ppd " << ppd;
    }
  }
}

TEST(PruningSpecTest, Lemma1EveryTupleOfDominatingCellBeatsEveryTupleOf) {
  // Lemma 1: p_i < p_j implies every tuple of p_i dominates every tuple
  // of p_j. Sampled over random tuples of random cell pairs.
  Rng rng(2718);
  const Grid grid = MakeGrid(3, 4);
  for (int trial = 0; trial < 200; ++trial) {
    const CellId a = rng.NextBounded(grid.num_cells());
    const CellId b = rng.NextBounded(grid.num_cells());
    if (!grid.CellDominates(a, b)) {
      continue;
    }
    // Random tuples strictly inside each half-open cell.
    const std::vector<double> a_lo = grid.MinCorner(a);
    const std::vector<double> a_hi = grid.MaxCorner(a);
    const std::vector<double> b_lo = grid.MinCorner(b);
    const std::vector<double> b_hi = grid.MaxCorner(b);
    double ta[3];
    double tb[3];
    for (size_t k = 0; k < 3; ++k) {
      ta[k] = a_lo[k] + (a_hi[k] - a_lo[k]) * 0.999 * rng.NextDouble();
      tb[k] = b_lo[k] + (b_hi[k] - b_lo[k]) * 0.999 * rng.NextDouble();
    }
    EXPECT_TRUE(Dominates(ta, tb, 3))
        << "cells " << a << " -> " << b << " violated Lemma 1";
  }
}

TEST(PruningSpecTest, BitstringIsUnionOfLocalBitstrings) {
  // Figure 3 / Algorithm 2 line 3 spec: OR of per-split bitstrings equals
  // the whole-dataset bitstring, for any split.
  const Dataset data = data::GenerateAntiCorrelated(600, 3, 55);
  const Grid grid = MakeGrid(3, 4);
  const DynamicBitset whole = BuildLocalBitstring(
      grid, data, 0, static_cast<TupleId>(data.size()));
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    // Random split points.
    std::set<TupleId> cuts = {0, static_cast<TupleId>(data.size())};
    for (int c = 0; c < 4; ++c) {
      cuts.insert(static_cast<TupleId>(rng.NextBounded(data.size())));
    }
    DynamicBitset merged(grid.num_cells());
    auto it = cuts.begin();
    TupleId prev = *it;
    for (++it; it != cuts.end(); ++it) {
      merged |= BuildLocalBitstring(grid, data, prev, *it);
      prev = *it;
    }
    EXPECT_EQ(merged, whole) << "trial " << trial;
  }
}

}  // namespace
}  // namespace skymr::core
