#include "src/core/independent_groups.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/partition_bitstring.h"
#include "src/data/generator.h"

namespace skymr::core {
namespace {

Grid MakeGrid(size_t dim, uint32_t ppd) {
  return std::move(Grid::Create(dim, ppd, Bounds::UnitCube(dim))).value();
}

TEST(GenerateIndependentGroupsTest, Figure6Example) {
  // Figure 6: 3x3 grid, non-empty cells {p1, p2, p3, p4, p6}.
  // Seeds found by descending index: p6 -> IG1 = {p3, p6};
  // p4 -> IG2 = {p1, p3, p4}; p2 -> IG3 = {p1, p2}.
  const Grid grid = MakeGrid(2, 3);
  DynamicBitset bits(9);
  for (const CellId c : {1, 2, 3, 4, 6}) {
    bits.Set(c);
  }
  const std::vector<IndependentGroup> groups =
      GenerateIndependentGroups(grid, bits);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].seed, 6u);
  EXPECT_EQ(groups[0].cells, (std::vector<CellId>{3, 6}));
  EXPECT_EQ(groups[1].seed, 4u);
  EXPECT_EQ(groups[1].cells, (std::vector<CellId>{1, 3, 4}));
  EXPECT_EQ(groups[2].seed, 2u);
  EXPECT_EQ(groups[2].cells, (std::vector<CellId>{1, 2}));
}

TEST(GenerateIndependentGroupsTest, EmptyBitstringNoGroups) {
  const Grid grid = MakeGrid(2, 3);
  EXPECT_TRUE(GenerateIndependentGroups(grid, DynamicBitset(9)).empty());
}

TEST(GenerateIndependentGroupsTest, SingleCell) {
  const Grid grid = MakeGrid(2, 3);
  DynamicBitset bits(9);
  bits.Set(4);
  const auto groups = GenerateIndependentGroups(grid, bits);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].seed, 4u);
  EXPECT_EQ(groups[0].cells, (std::vector<CellId>{4}));
  EXPECT_EQ(groups[0].cost, 3u);  // |p4.ADR| over the grid = 2*2-1.
}

TEST(GenerateIndependentGroupsTest, GroupsAreIndependentDefinition5) {
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t dim = 2 + rng.NextBounded(3);
    const uint32_t ppd = static_cast<uint32_t>(2 + rng.NextBounded(3));
    const Grid grid = MakeGrid(dim, ppd);
    DynamicBitset bits(grid.num_cells());
    for (size_t i = 0; i < bits.size(); ++i) {
      if (rng.NextBounded(3) == 0) {
        bits.Set(i);
      }
    }
    const auto groups = GenerateIndependentGroups(grid, bits);
    EXPECT_EQ(ExplainGroupIndependenceViolation(grid, bits, groups), "");
  }
}

TEST(GenerateIndependentGroupsTest, GroupsCoverAllNonEmptyCells) {
  Rng rng(6);
  for (int trial = 0; trial < 25; ++trial) {
    const Grid grid = MakeGrid(2 + rng.NextBounded(2),
                               static_cast<uint32_t>(2 + rng.NextBounded(4)));
    DynamicBitset bits(grid.num_cells());
    for (size_t i = 0; i < bits.size(); ++i) {
      if (rng.NextBounded(2) == 0) {
        bits.Set(i);
      }
    }
    const auto groups = GenerateIndependentGroups(grid, bits);
    std::set<CellId> covered;
    for (const auto& group : groups) {
      covered.insert(group.cells.begin(), group.cells.end());
      // Every member must be non-empty.
      for (const CellId cell : group.cells) {
        EXPECT_TRUE(bits.Test(cell));
      }
      // Seed must be a member, cells sorted unique.
      EXPECT_TRUE(std::binary_search(group.cells.begin(),
                                     group.cells.end(), group.seed));
      EXPECT_TRUE(std::is_sorted(group.cells.begin(), group.cells.end()));
    }
    EXPECT_EQ(covered.size(), bits.Count());
  }
}

TEST(GenerateIndependentGroupsTest, SeedsAreMaximumPartitions) {
  // Definition 6: a seed must not be in any non-empty partition's ADR at
  // the time it is chosen; with the working-copy semantics this means no
  // *ungrouped-yet* partition strictly above it. We verify the first seed
  // against the full bitstring.
  const Grid grid = MakeGrid(2, 4);
  DynamicBitset bits(16);
  for (const CellId c : {0, 5, 9, 13}) {
    bits.Set(c);
  }
  const auto groups = GenerateIndependentGroups(grid, bits);
  ASSERT_FALSE(groups.empty());
  const CellId first_seed = groups[0].seed;
  for (size_t other = bits.FindFirst(); other < bits.size();
       other = bits.FindNext(other)) {
    EXPECT_FALSE(grid.InAdrOf(other, first_seed))
        << "first seed " << first_seed << " is in ADR of " << other;
  }
}

// ----------------------------------------------------------------------
// AssignGroupsToReducers (Section 5.4).
// ----------------------------------------------------------------------

std::vector<IndependentGroup> Figure6Groups(const Grid& grid) {
  DynamicBitset bits(9);
  for (const CellId c : {1, 2, 3, 4, 6}) {
    bits.Set(c);
  }
  return GenerateIndependentGroups(grid, bits);
}

TEST(AssignGroupsTest, FewerGroupsThanReducersOneEach) {
  const Grid grid = MakeGrid(2, 3);
  const auto groups = Figure6Groups(grid);
  const auto assigned = AssignGroupsToReducers(
      grid, groups, 5, GroupMergeStrategy::kComputationCost);
  ASSERT_EQ(assigned.size(), 3u);
  for (size_t i = 0; i < assigned.size(); ++i) {
    EXPECT_EQ(assigned[i].member_groups, (std::vector<uint32_t>{
                                             static_cast<uint32_t>(i)}));
  }
}

TEST(AssignGroupsTest, ResponsibilityPartitionsCells) {
  const Grid grid = MakeGrid(2, 3);
  const auto groups = Figure6Groups(grid);
  for (const auto strategy : {GroupMergeStrategy::kRoundRobin,
                              GroupMergeStrategy::kComputationCost,
                              GroupMergeStrategy::kCommunicationCost,
                              GroupMergeStrategy::kBalanced}) {
    for (const int reducers : {1, 2, 3, 5}) {
      const auto assigned =
          AssignGroupsToReducers(grid, groups, reducers, strategy);
      std::map<CellId, int> times_responsible;
      for (const auto& rg : assigned) {
        for (const CellId cell : rg.responsible) {
          ++times_responsible[cell];
          // Responsible cells must be members.
          EXPECT_TRUE(std::binary_search(rg.cells.begin(), rg.cells.end(),
                                         cell));
        }
      }
      // Every non-empty cell output exactly once (Section 5.4.2).
      EXPECT_EQ(times_responsible.size(), 5u)
          << GroupMergeStrategyName(strategy) << " r=" << reducers;
      for (const auto& [cell, count] : times_responsible) {
        EXPECT_EQ(count, 1) << "cell " << cell << " with "
                            << GroupMergeStrategyName(strategy)
                            << " r=" << reducers;
      }
    }
  }
}

TEST(AssignGroupsTest, ResponsibleGroupHasMinimalSeedAdr) {
  // Section 5.4.2: replicated partitions go to the group with minimal
  // |p_m.ADR|. In Figure 6, p3 is in IG1 (seed p6, |ADR| = 1*3-1 = 2)
  // and IG2 (seed p4, |ADR| = 2*2-1 = 3): IG1 must output p3.
  const Grid grid = MakeGrid(2, 3);
  const auto groups = Figure6Groups(grid);
  const auto assigned = AssignGroupsToReducers(
      grid, groups, 3, GroupMergeStrategy::kComputationCost);
  // Find the reducer group containing original group 0 (seed p6).
  for (const auto& rg : assigned) {
    const bool has_ig1 =
        std::find(rg.member_groups.begin(), rg.member_groups.end(), 0u) !=
        rg.member_groups.end();
    const bool responsible_for_p3 =
        std::find(rg.responsible.begin(), rg.responsible.end(), CellId{3}) !=
        rg.responsible.end();
    EXPECT_EQ(responsible_for_p3, has_ig1);
  }
}

TEST(AssignGroupsTest, MergingCapsGroupCount) {
  const Grid grid = MakeGrid(2, 3);
  const auto groups = Figure6Groups(grid);
  ASSERT_GT(groups.size(), 2u);
  for (const auto strategy : {GroupMergeStrategy::kRoundRobin,
                              GroupMergeStrategy::kComputationCost,
                              GroupMergeStrategy::kCommunicationCost,
                              GroupMergeStrategy::kBalanced}) {
    const auto assigned = AssignGroupsToReducers(grid, groups, 2, strategy);
    EXPECT_LE(assigned.size(), 2u) << GroupMergeStrategyName(strategy);
    // All original groups placed exactly once.
    std::set<uint32_t> placed;
    for (const auto& rg : assigned) {
      for (const uint32_t g : rg.member_groups) {
        EXPECT_TRUE(placed.insert(g).second);
      }
    }
    EXPECT_EQ(placed.size(), groups.size());
  }
}

TEST(AssignGroupsTest, ComputationCostBalancesLoads) {
  // Anti-diagonal cells of a 4x4 grid plus the origin: four mutually
  // incomparable seeds, each grouped with the shared origin cell.
  const Grid grid = MakeGrid(2, 4);
  DynamicBitset bits(16);
  for (const CellId c : {0, 3, 6, 9, 12}) {
    bits.Set(c);
  }
  const auto groups = GenerateIndependentGroups(grid, bits);
  ASSERT_EQ(groups.size(), 4u);
  const auto assigned = AssignGroupsToReducers(
      grid, groups, 3, GroupMergeStrategy::kComputationCost);
  ASSERT_EQ(assigned.size(), 3u);
  uint64_t min_cost = UINT64_MAX;
  uint64_t max_cost = 0;
  for (const auto& rg : assigned) {
    min_cost = std::min(min_cost, rg.cost);
    max_cost = std::max(max_cost, rg.cost);
  }
  // LPT guarantees max <= (4/3) * optimal; a loose sanity bound: the
  // heaviest bin is at most the lightest bin plus the largest group.
  uint64_t largest_group = 0;
  for (const auto& g : groups) {
    largest_group = std::max(largest_group, g.cost);
  }
  EXPECT_LE(max_cost, min_cost + largest_group);
}

TEST(AssignGroupsTest, EmptyGroupsYieldNothing) {
  const Grid grid = MakeGrid(2, 3);
  EXPECT_TRUE(AssignGroupsToReducers(grid, {}, 4,
                                     GroupMergeStrategy::kComputationCost)
                  .empty());
}

TEST(AssignGroupsTest, DeterministicAcrossCalls) {
  // Mapper-side consistency (Section 5.3): repeated derivation from the
  // same bitstring must be identical.
  const Dataset dataset = data::GenerateAntiCorrelated(500, 3, 21);
  const Grid grid = MakeGrid(3, 3);
  DynamicBitset bits = BuildLocalBitstring(
      grid, dataset, 0, static_cast<TupleId>(dataset.size()));
  PruneDominated(grid, &bits, PruneMode::kPrefix);
  const auto groups_a = GenerateIndependentGroups(grid, bits);
  const auto groups_b = GenerateIndependentGroups(grid, bits);
  ASSERT_EQ(groups_a.size(), groups_b.size());
  for (size_t i = 0; i < groups_a.size(); ++i) {
    EXPECT_EQ(groups_a[i].seed, groups_b[i].seed);
    EXPECT_EQ(groups_a[i].cells, groups_b[i].cells);
  }
  const auto assigned_a = AssignGroupsToReducers(
      grid, groups_a, 4, GroupMergeStrategy::kCommunicationCost);
  const auto assigned_b = AssignGroupsToReducers(
      grid, groups_b, 4, GroupMergeStrategy::kCommunicationCost);
  ASSERT_EQ(assigned_a.size(), assigned_b.size());
  for (size_t i = 0; i < assigned_a.size(); ++i) {
    EXPECT_EQ(assigned_a[i].cells, assigned_b[i].cells);
    EXPECT_EQ(assigned_a[i].responsible, assigned_b[i].responsible);
  }
}

TEST(GroupMergeStrategyTest, Names) {
  EXPECT_STREQ(GroupMergeStrategyName(GroupMergeStrategy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(
      GroupMergeStrategyName(GroupMergeStrategy::kComputationCost),
      "computation-cost");
  EXPECT_STREQ(
      GroupMergeStrategyName(GroupMergeStrategy::kCommunicationCost),
      "communication-cost");
}

}  // namespace
}  // namespace skymr::core
