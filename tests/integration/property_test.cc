// Cross-configuration property sweep: every MapReduce skyline algorithm
// must return exactly the reference skyline for every combination of
// distribution, dimensionality, cardinality, and parallelism tested.

#include <algorithm>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/skymr.h"

namespace skymr {
namespace {

using data::Distribution;

using SweepParam =
    std::tuple<Algorithm, Distribution, size_t /*dim*/, size_t /*card*/>;

class SkylineAlgorithmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SkylineAlgorithmSweep, ExactSkyline) {
  const auto& [algorithm, dist, dim, card] = GetParam();
  data::GeneratorConfig gen;
  gen.distribution = dist;
  gen.dim = dim;
  gen.cardinality = card;
  gen.seed = 1000 + dim * 131 + card * 7;
  const Dataset data = std::move(data::Generate(gen)).value();

  RunnerConfig config;
  config.algorithm = algorithm;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 4;
  config.ppd.max_candidate = 5;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ExplainSkylineMismatch(data, result->SkylineIds()), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineAlgorithmSweep,
    ::testing::Combine(
        ::testing::Values(Algorithm::kMrGpsrs, Algorithm::kMrGpmrs,
                          Algorithm::kMrBnl, Algorithm::kMrAngle,
                          Algorithm::kSkyMr),
        ::testing::Values(Distribution::kIndependent,
                          Distribution::kAntiCorrelated),
        ::testing::Values(size_t{2}, size_t{5}, size_t{8}),
        ::testing::Values(size_t{40}, size_t{700})),
    ([](const ::testing::TestParamInfo<SweepParam>& info) {
      const auto& [algorithm, dist, dim, card] = info.param;
      std::string name = std::string(AlgorithmName(algorithm)) + "_" +
                         data::DistributionName(dist) + "_d" +
                         std::to_string(dim) + "_n" + std::to_string(card);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    }));

// Determinism: repeated runs with identical configuration produce
// byte-identical skylines (ids and values, same order).
TEST(DeterminismProperty, RepeatedRunsIdentical) {
  const Dataset data = data::GenerateAntiCorrelated(1200, 3, 55);
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 4;
  config.engine.num_reducers = 3;
  config.engine.num_threads = 4;
  config.ppd.max_candidate = 5;
  auto first = ComputeSkyline(data, config);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = ComputeSkyline(data, config);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->skyline.ids(), first->skyline.ids());
    EXPECT_EQ(again->skyline.values(), first->skyline.values());
    EXPECT_EQ(again->ppd, first->ppd);
  }
}

// Pathological layouts.
TEST(EdgeCaseProperty, AllTuplesInOneCell) {
  Dataset data(3);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    // All tuples inside [0, 0.1)^3: one grid cell at low PPD.
    data.Append({rng.Uniform(0.0, 0.1), rng.Uniform(0.0, 0.1),
                 rng.Uniform(0.0, 0.1)});
  }
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs}) {
    RunnerConfig config;
    config.algorithm = algorithm;
    config.ppd.explicit_ppd = 3;
    config.engine.num_reducers = 4;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ExplainSkylineMismatch(data, result->SkylineIds()), "");
  }
}

TEST(EdgeCaseProperty, AllTuplesIdentical) {
  Dataset data(2);
  for (int i = 0; i < 64; ++i) {
    data.Append({0.4, 0.6});
  }
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
        Algorithm::kMrAngle, Algorithm::kSkyMr}) {
    RunnerConfig config;
    config.algorithm = algorithm;
    config.engine.num_map_tasks = 5;
    config.engine.num_reducers = 3;
    config.ppd.max_candidate = 4;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->skyline.size(), 64u) << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseProperty, SingleDominatorWipesEverything) {
  Dataset data(3);
  data.Append({0.0, 0.0, 0.0});
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    data.Append({rng.Uniform(0.2, 1.0), rng.Uniform(0.2, 1.0),
                 rng.Uniform(0.2, 1.0)});
  }
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
        Algorithm::kMrAngle, Algorithm::kSkyMr}) {
    RunnerConfig config;
    config.algorithm = algorithm;
    config.engine.num_map_tasks = 4;
    config.engine.num_reducers = 4;
    config.ppd.max_candidate = 4;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->SkylineIds(), (std::vector<TupleId>{0}))
        << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseProperty, OneDimensionalDataMinimumWins) {
  Dataset data(1);
  data.Append({0.7});
  data.Append({0.2});
  data.Append({0.2});  // Tie for the minimum: both stay.
  data.Append({0.9});
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
        Algorithm::kMrAngle}) {
    RunnerConfig config;
    config.algorithm = algorithm;
    config.engine.num_map_tasks = 2;
    config.ppd.explicit_ppd = 2;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(SameIdSet(result->SkylineIds(), {1, 2}))
        << AlgorithmName(algorithm);
  }
}

// Lemma 2 end to end: every reducer-group output of MR-GPMRS is a subset
// of the global skyline, checked implicitly by exactness plus
// no-duplicates across many reducer counts.
TEST(Lemma2Property, GpmrsOutputsPartitionTheSkyline) {
  const Dataset data = data::GenerateAntiCorrelated(900, 3, 66);
  const std::vector<TupleId> expected = ReferenceSkyline(data);
  for (const int reducers : {1, 2, 3, 5, 8, 13}) {
    RunnerConfig config;
    config.algorithm = Algorithm::kMrGpmrs;
    config.engine.num_reducers = reducers;
    config.ppd.explicit_ppd = 3;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok());
    std::vector<TupleId> ids = result->SkylineIds();
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
    EXPECT_TRUE(SameIdSet(ids, expected)) << "reducers=" << reducers;
  }
}

}  // namespace
}  // namespace skymr
