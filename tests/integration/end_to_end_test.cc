// End-to-end pipeline tests: CSV in, full bitstring + skyline MapReduce
// pipeline, results verified against the reference and across algorithms.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/cost/cost_model.h"
#include "src/skymr.h"

namespace skymr {
namespace {

TEST(EndToEndTest, CsvRoundTripThroughFullPipeline) {
  const Dataset generated = data::GenerateAntiCorrelated(1000, 3, 77);
  const std::string path =
      (std::filesystem::temp_directory_path() / "skymr_e2e.csv").string();
  ASSERT_TRUE(data::SaveCsv(generated, path).ok());
  auto loaded = data::LoadCsv(path, /*has_header=*/false);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 4;
  config.engine.num_reducers = 5;
  config.ppd.max_candidate = 6;
  auto result = ComputeSkyline(*loaded, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ExplainSkylineMismatch(*loaded, result->SkylineIds()), "");
}

TEST(EndToEndTest, AllAlgorithmsAgreeOnTheSameData) {
  const Dataset data = data::GenerateAntiCorrelated(1800, 4, 79);
  const std::vector<TupleId> expected = ReferenceSkyline(data);
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
        Algorithm::kMrAngle, Algorithm::kHybrid, Algorithm::kSkyMr}) {
    RunnerConfig config;
    config.algorithm = algorithm;
    config.engine.num_map_tasks = 3;
    config.engine.num_reducers = 4;
    config.ppd.max_candidate = 5;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(SameIdSet(result->SkylineIds(), expected))
        << AlgorithmName(algorithm);
  }
}

TEST(EndToEndTest, SkylineTuplesCarryCorrectValues) {
  const Dataset data = data::GenerateIndependent(600, 2, 81);
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.ppd.max_candidate = 5;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  // The shipped tuple values must equal the dataset rows for the ids.
  for (size_t i = 0; i < result->skyline.size(); ++i) {
    const TupleId id = result->skyline.IdAt(i);
    const double* expected_row = data.RowPtr(id);
    const double* actual_row = result->skyline.RowAt(i);
    for (size_t k = 0; k < data.dim(); ++k) {
      EXPECT_DOUBLE_EQ(actual_row[k], expected_row[k]);
    }
  }
}

TEST(EndToEndTest, MeasuredMapperComparisonsRespectCostModelBound) {
  // Section 6's estimate is an upper bound under worst-case assumptions;
  // Section 7.5 verifies "the estimated cost is higher than the real cost
  // in every case". We check it end to end on independent data.
  const Dataset data = data::GenerateIndependent(4000, 3, 83);
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 4;
  config.engine.num_reducers = 4;
  config.ppd.explicit_ppd = 4;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  const auto& skyline_job = result->jobs[1];
  const double mapper_bound = cost::MapperCost(result->ppd, data.dim());
  const double reducer_bound = cost::ReducerCost(result->ppd, data.dim());
  EXPECT_LE(static_cast<double>(skyline_job.MaxMapCounter(
                mr::kCounterPartitionComparisons)),
            mapper_bound);
  EXPECT_LE(static_cast<double>(skyline_job.MaxReduceCounter(
                mr::kCounterPartitionComparisons)),
            reducer_bound);
}

TEST(EndToEndTest, GpmrsShufflesMoreButReducesInParallel) {
  // The paper's trade-off: MR-GPMRS replicates partitions across groups
  // (more communication) to let reducers finish independently.
  const Dataset data = data::GenerateAntiCorrelated(3000, 3, 87);
  RunnerConfig single;
  single.algorithm = Algorithm::kMrGpsrs;
  single.ppd.explicit_ppd = 4;
  single.engine.num_map_tasks = 4;
  RunnerConfig multi = single;
  multi.algorithm = Algorithm::kMrGpmrs;
  multi.engine.num_reducers = 6;

  auto single_run = ComputeSkyline(data, single);
  auto multi_run = ComputeSkyline(data, multi);
  ASSERT_TRUE(single_run.ok());
  ASSERT_TRUE(multi_run.ok());
  EXPECT_GE(multi_run->jobs[1].shuffle_bytes,
            single_run->jobs[1].shuffle_bytes);
  EXPECT_EQ(multi_run->jobs[1].reduce_tasks.size(), 6u);
  // Both are exact.
  EXPECT_TRUE(
      SameIdSet(multi_run->SkylineIds(), single_run->SkylineIds()));
}

TEST(EndToEndTest, WorksWithRealisticMixedScales) {
  // Non-unit domains (price in dollars, distance in km) via unit_bounds
  // = false.
  Dataset hotels(3);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    hotels.Append({rng.Uniform(40.0, 400.0), rng.Uniform(0.1, 20.0),
                   rng.Uniform(1.0, 5.0)});
  }
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.unit_bounds = false;
  config.ppd.max_candidate = 4;
  config.engine.num_reducers = 3;
  auto result = ComputeSkyline(hotels, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ExplainSkylineMismatch(hotels, result->SkylineIds()), "");
}

}  // namespace
}  // namespace skymr
