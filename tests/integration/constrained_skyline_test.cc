// Constrained skyline queries: the skyline restricted to a box must equal
// the reference skyline of the filtered dataset, for every algorithm.

#include <gtest/gtest.h>

#include "src/skymr.h"

namespace skymr {
namespace {

/// Reference: filter the dataset to the box, keep original ids.
std::vector<TupleId> ConstrainedReference(const Dataset& data,
                                          const Box& box) {
  Dataset filtered(data.dim());
  std::vector<TupleId> original_ids;
  for (size_t i = 0; i < data.size(); ++i) {
    const auto id = static_cast<TupleId>(i);
    if (box.Contains(data.RowPtr(id), data.dim())) {
      filtered.Append(data.Row(id));
      original_ids.push_back(id);
    }
  }
  std::vector<TupleId> result;
  for (const TupleId local : ReferenceSkyline(filtered)) {
    result.push_back(original_ids[local]);
  }
  return result;
}

Box MiddleBox(size_t dim) {
  Box box;
  box.lo.assign(dim, 0.2);
  box.hi.assign(dim, 0.8);
  return box;
}

TEST(ConstrainedSkylineTest, AllAlgorithmsMatchFilteredReference) {
  const Dataset data = data::GenerateAntiCorrelated(2000, 3, 17);
  const Box box = MiddleBox(3);
  const std::vector<TupleId> expected = ConstrainedReference(data, box);
  ASSERT_FALSE(expected.empty());
  for (const Algorithm algorithm :
       {Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
        Algorithm::kMrAngle, Algorithm::kHybrid}) {
    RunnerConfig config;
    config.algorithm = algorithm;
    config.engine.num_map_tasks = 3;
    config.engine.num_reducers = 4;
    config.ppd.max_candidate = 6;
    // lint:allow(deprecated-constraint) pins the legacy shim surface
    config.constraint = box;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm) << ": "
                             << result.status();
    EXPECT_TRUE(SameIdSet(result->SkylineIds(), expected))
        << AlgorithmName(algorithm);
  }
}

TEST(ConstrainedSkylineTest, ConstraintChangesTheAnswer) {
  // A tuple that dominates everything globally sits outside the box; the
  // constrained skyline must not contain it, and tuples it dominated can
  // resurface.
  Dataset data(2);
  data.Append({0.05, 0.05});  // Outside [0.2, 0.8]^2, dominates all.
  data.Append({0.3, 0.4});
  data.Append({0.4, 0.3});
  data.Append({0.5, 0.5});  // Dominated inside the box too.
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.ppd.explicit_ppd = 4;
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  config.constraint = MiddleBox(2);
  auto constrained = ComputeSkyline(data, config);
  ASSERT_TRUE(constrained.ok());
  EXPECT_TRUE(SameIdSet(constrained->SkylineIds(), {1, 2}));

  RunnerConfig unconstrained = config;
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  unconstrained.constraint.reset();
  auto global = ComputeSkyline(data, unconstrained);
  ASSERT_TRUE(global.ok());
  EXPECT_TRUE(SameIdSet(global->SkylineIds(), {0}));
}

TEST(ConstrainedSkylineTest, EmptyBoxEmptySkyline) {
  const Dataset data = data::GenerateIndependent(500, 2, 19);
  Box box;
  box.lo = {2.0, 2.0};  // Entirely outside the unit cube.
  box.hi = {3.0, 3.0};
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.ppd.max_candidate = 4;
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  config.constraint = box;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->skyline.empty());
}

TEST(ConstrainedSkylineTest, FullBoxEqualsUnconstrained) {
  const Dataset data = data::GenerateIndependent(800, 3, 23);
  Box box;
  box.lo.assign(3, 0.0);
  box.hi.assign(3, 1.0);
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_reducers = 3;
  config.ppd.max_candidate = 4;
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  config.constraint = box;
  auto constrained = ComputeSkyline(data, config);
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(ExplainSkylineMismatch(data, constrained->SkylineIds()), "");
}

TEST(ConstrainedSkylineTest, InvalidBoxRejected) {
  const Dataset data = data::GenerateIndependent(100, 2, 29);
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  Box bad;
  bad.lo = {0.5};  // Wrong width.
  bad.hi = {0.6};
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  config.constraint = bad;
  EXPECT_FALSE(ComputeSkyline(data, config).ok());
  Box inverted;
  inverted.lo = {0.8, 0.8};
  inverted.hi = {0.2, 0.2};
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  config.constraint = inverted;
  EXPECT_FALSE(ComputeSkyline(data, config).ok());
}

TEST(BoxTest, ContainsSemantics) {
  Box box;
  box.lo = {0.2, 0.2};
  box.hi = {0.8, 0.8};
  const double inside[] = {0.5, 0.5};
  const double on_edge[] = {0.2, 0.8};  // Closed box: edges included.
  const double outside[] = {0.1, 0.5};
  EXPECT_TRUE(box.Contains(inside, 2));
  EXPECT_TRUE(box.Contains(on_edge, 2));
  EXPECT_FALSE(box.Contains(outside, 2));
  EXPECT_TRUE(box.Validate(2).ok());
  EXPECT_FALSE(box.Validate(3).ok());
}

}  // namespace
}  // namespace skymr
