// Differential fuzzing: random datasets (random dimension, size,
// duplicates, coarse value grids that force ties) run through every
// algorithm and random engine configurations, always compared against the
// O(n^2) reference. Complements the structured property sweeps with
// adversarial shapes the generators never produce.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/local/skyline_window.h"
#include "src/skymr.h"

namespace skymr {
namespace {

/// A random dataset with adversarial characteristics: coarse value grids
/// (many exact ties), duplicated rows, occasional constant dimensions.
Dataset FuzzDataset(Rng* rng) {
  const size_t dim = 1 + rng->NextBounded(5);
  const size_t n = rng->NextBounded(120);
  // Values snap to a coarse lattice with probability 1/2 to force ties.
  const bool coarse = rng->NextBounded(2) == 0;
  const uint64_t lattice = 2 + rng->NextBounded(5);
  const bool constant_dim = dim > 1 && rng->NextBounded(4) == 0;
  Dataset data(dim);
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && rng->NextBounded(8) == 0) {
      // Exact duplicate of an earlier tuple.
      const auto src = static_cast<TupleId>(rng->NextBounded(i));
      data.Append(data.Row(src));
      continue;
    }
    for (size_t k = 0; k < dim; ++k) {
      if (constant_dim && k == 0) {
        row[k] = 0.5;
      } else if (coarse) {
        row[k] = static_cast<double>(rng->NextBounded(lattice)) /
                 static_cast<double>(lattice);
      } else {
        row[k] = rng->NextDouble();
      }
    }
    data.Append(row);
  }
  return data;
}

TEST(FuzzTest, AllAlgorithmsAgainstReference) {
  Rng rng(0xf00dcafe);
  constexpr int kCases = 60;
  const Algorithm algorithms[] = {
      Algorithm::kMrGpsrs, Algorithm::kMrGpmrs, Algorithm::kMrBnl,
      Algorithm::kMrAngle, Algorithm::kSkyMr};
  for (int trial = 0; trial < kCases; ++trial) {
    const Dataset data = FuzzDataset(&rng);
    const std::vector<TupleId> expected = ReferenceSkyline(data);
    RunnerConfig config;
    config.algorithm = algorithms[rng.NextBounded(5)];
    config.engine.num_map_tasks = 1 + static_cast<int>(rng.NextBounded(6));
    config.engine.num_reducers = 1 + static_cast<int>(rng.NextBounded(6));
    config.ppd.max_candidate = 2 + static_cast<uint32_t>(rng.NextBounded(5));
    if (rng.NextBounded(2) == 0) {
      config.ppd.explicit_ppd = 2 + static_cast<uint32_t>(rng.NextBounded(4));
    }
    config.merge = static_cast<core::GroupMergeStrategy>(rng.NextBounded(4));
    config.unit_bounds = rng.NextBounded(2) == 0;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok())
        << "trial " << trial << " " << AlgorithmName(config.algorithm)
        << ": " << result.status();
    EXPECT_TRUE(SameIdSet(result->SkylineIds(), expected))
        << "trial " << trial << " n=" << data.size()
        << " d=" << data.dim() << " algo="
        << AlgorithmName(config.algorithm)
        << " m=" << config.engine.num_map_tasks
        << " r=" << config.engine.num_reducers
        << " ppd=" << config.ppd.explicit_ppd;
  }
}

TEST(FuzzTest, ConstrainedQueriesAgainstFilteredReference) {
  Rng rng(0xdecafbad);
  constexpr int kCases = 30;
  for (int trial = 0; trial < kCases; ++trial) {
    const Dataset data = FuzzDataset(&rng);
    Box box;
    box.lo.resize(data.dim());
    box.hi.resize(data.dim());
    for (size_t k = 0; k < data.dim(); ++k) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      box.lo[k] = std::min(a, b);
      box.hi[k] = std::max(a, b);
    }
    // Filtered reference with original ids.
    Dataset filtered(data.dim());
    std::vector<TupleId> original;
    for (size_t i = 0; i < data.size(); ++i) {
      const auto id = static_cast<TupleId>(i);
      if (box.Contains(data.RowPtr(id), data.dim())) {
        filtered.Append(data.Row(id));
        original.push_back(id);
      }
    }
    std::vector<TupleId> expected;
    for (const TupleId local : ReferenceSkyline(filtered)) {
      expected.push_back(original[local]);
    }

    RunnerConfig config;
    config.algorithm =
        rng.NextBounded(2) == 0 ? Algorithm::kMrGpsrs : Algorithm::kMrGpmrs;
    config.engine.num_map_tasks = 1 + static_cast<int>(rng.NextBounded(4));
    config.engine.num_reducers = 1 + static_cast<int>(rng.NextBounded(4));
    config.ppd.max_candidate = 4;
    // lint:allow(deprecated-constraint) pins the legacy shim surface
    config.constraint = box;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok()) << "trial " << trial;
    EXPECT_TRUE(SameIdSet(result->SkylineIds(), expected))
        << "trial " << trial << " n=" << data.size()
        << " d=" << data.dim();
  }
}

TEST(FuzzTest, SerdeRoundTripsRandomWindows) {
  Rng rng(0xabad1dea);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t dim = 1 + rng.NextBounded(8);
    SkylineWindow window(dim);
    const size_t n = rng.NextBounded(40);
    std::vector<double> row(dim);
    for (size_t i = 0; i < n; ++i) {
      for (double& v : row) {
        v = rng.NextDouble();
      }
      window.AppendUnchecked(row.data(),
                             static_cast<TupleId>(rng.NextBounded(1u << 30)));
    }
    const auto round =
        DeserializeFromBytes<SkylineWindow>(SerializeToBytes(window));
    ASSERT_EQ(round, window) << "trial " << trial;
  }
}

}  // namespace
}  // namespace skymr
