// Many ComputeSkyline calls sharing one ThreadPool must behave exactly
// like serial calls: bit-identical skylines and deterministic counters,
// no cross-query state. This is the concurrency-labeled test the TSan CI
// job runs — the engine's nested parallelism (each query fans its map/
// reduce tasks onto the same pool via work-helping) is where a data race
// between queries would surface.

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/obs/bench_artifact.h"
#include "src/obs/metrics.h"
#include "src/skymr.h"

namespace skymr {
namespace {

struct QuerySpec {
  size_t cardinality;
  size_t dim;
  uint64_t seed;
  Algorithm algorithm;
  bool anti_correlated;
};

Dataset MakeDataset(const QuerySpec& spec) {
  return spec.anti_correlated
             ? data::GenerateAntiCorrelated(spec.cardinality, spec.dim,
                                            spec.seed)
             : data::GenerateIndependent(spec.cardinality, spec.dim,
                                         spec.seed);
}

RunnerConfig MakeConfig(const QuerySpec& spec, ThreadPool* pool) {
  RunnerConfig config;
  config.algorithm = spec.algorithm;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 3;
  config.ppd.max_candidate = 5;
  config.pool = pool;
  return config;
}

/// The deterministic fingerprint of one query's result.
struct QuerySignal {
  std::vector<TupleId> skyline_ids;
  std::map<std::string, int64_t> counters;

  bool operator==(const QuerySignal& other) const {
    return skyline_ids == other.skyline_ids && counters == other.counters;
  }
};

QuerySignal SignalOf(const SkylineResult& result, size_t input_tuples) {
  QuerySignal signal;
  signal.skyline_ids = result.SkylineIds();
  std::sort(signal.skyline_ids.begin(), signal.skyline_ids.end());
  signal.counters = obs::DeterministicCounters(result, input_tuples);
  return signal;
}

TEST(ConcurrentQueriesTest, SharedPoolMatchesSerialBitForBit) {
  const std::vector<QuerySpec> specs = {
      {900, 3, 101, Algorithm::kMrGpmrs, false},
      {1200, 4, 102, Algorithm::kMrGpsrs, true},
      {700, 3, 103, Algorithm::kMrGpmrs, true},
      {1500, 4, 104, Algorithm::kMrGpmrs, false},
      {800, 5, 105, Algorithm::kMrGpsrs, false},
      {1000, 3, 106, Algorithm::kSkyMr, false},
  };

  // Serial reference: each query alone, each with its own private pool.
  std::vector<QuerySignal> serial(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const Dataset data = MakeDataset(specs[i]);
    auto result = ComputeSkyline(data, MakeConfig(specs[i], nullptr));
    ASSERT_TRUE(result.ok()) << "query " << i << ": " << result.status();
    serial[i] = SignalOf(*result, specs[i].cardinality);
  }

  // Concurrent: every query at once, all nesting onto one shared pool,
  // repeated a few rounds so interleavings vary.
  ThreadPool pool(4);
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<QuerySignal> concurrent(specs.size());
    std::vector<Status> statuses(specs.size(), Status::OK());
    std::vector<std::thread> threads;
    threads.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      threads.emplace_back([&, i] {
        const Dataset data = MakeDataset(specs[i]);
        auto result = ComputeSkyline(data, MakeConfig(specs[i], &pool));
        if (!result.ok()) {
          statuses[i] = result.status();
          return;
        }
        concurrent[i] = SignalOf(*result, specs[i].cardinality);
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(statuses[i].ok())
          << "round " << round << " query " << i << ": " << statuses[i];
      EXPECT_EQ(concurrent[i].skyline_ids, serial[i].skyline_ids)
          << "round " << round << " query " << i;
      EXPECT_EQ(concurrent[i].counters, serial[i].counters)
          << "round " << round << " query " << i;
    }
  }
}

TEST(ConcurrentQueriesTest, SharedMetricsRegistrySeesEveryQuery) {
  // Queries sharing a MetricsRegistry (the loadgen arrangement) must not
  // lose counter increments to races.
  obs::MetricsRegistry metrics;
  ThreadPool pool(4);
  const QuerySpec spec = {800, 3, 107, Algorithm::kMrGpmrs, false};
  const Dataset data = MakeDataset(spec);

  // One serial run to learn how many MapReduce jobs a query launches.
  RunnerConfig reference = MakeConfig(spec, nullptr);
  auto serial = ComputeSkyline(data, reference);
  ASSERT_TRUE(serial.ok());
  const auto jobs_per_query = static_cast<int64_t>(serial->jobs.size());
  ASSERT_GT(jobs_per_query, 0);

  constexpr int kQueries = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&] {
      RunnerConfig config = MakeConfig(spec, &pool);
      config.engine.metrics = &metrics;
      auto result = ComputeSkyline(data, config);
      if (!result.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(metrics.counter("mr.jobs_completed")->Value(),
            jobs_per_query * kQueries);
  EXPECT_EQ(metrics.sketch("mr.job_wall_us")->Snapshot().count(),
            static_cast<uint64_t>(jobs_per_query * kQueries));
}

}  // namespace
}  // namespace skymr
