// Many ComputeSkyline calls sharing one ThreadPool must behave exactly
// like serial calls: bit-identical skylines and deterministic counters,
// no cross-query state. This is the concurrency-labeled test the TSan CI
// job runs — the engine's nested parallelism (each query fans its map/
// reduce tasks onto the same pool via work-helping) is where a data race
// between queries would surface.

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/obs/bench_artifact.h"
#include "src/obs/metrics.h"
#include "src/skymr.h"

namespace skymr {
namespace {

struct CaseSpec {
  size_t cardinality;
  size_t dim;
  uint64_t seed;
  Algorithm algorithm;
  bool anti_correlated;
};

Dataset MakeDataset(const CaseSpec& spec) {
  return spec.anti_correlated
             ? data::GenerateAntiCorrelated(spec.cardinality, spec.dim,
                                            spec.seed)
             : data::GenerateIndependent(spec.cardinality, spec.dim,
                                         spec.seed);
}

RunnerConfig MakeConfig(const CaseSpec& spec, ThreadPool* pool) {
  RunnerConfig config;
  config.algorithm = spec.algorithm;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 3;
  config.ppd.max_candidate = 5;
  config.pool = pool;
  return config;
}

/// The deterministic fingerprint of one query's result.
struct QuerySignal {
  std::vector<TupleId> skyline_ids;
  std::map<std::string, int64_t> counters;

  bool operator==(const QuerySignal& other) const {
    return skyline_ids == other.skyline_ids && counters == other.counters;
  }
};

QuerySignal SignalOf(const SkylineResult& result, size_t input_tuples) {
  QuerySignal signal;
  signal.skyline_ids = result.SkylineIds();
  std::sort(signal.skyline_ids.begin(), signal.skyline_ids.end());
  signal.counters = obs::DeterministicCounters(result, input_tuples);
  return signal;
}

TEST(ConcurrentQueriesTest, SharedPoolMatchesSerialBitForBit) {
  const std::vector<CaseSpec> specs = {
      {900, 3, 101, Algorithm::kMrGpmrs, false},
      {1200, 4, 102, Algorithm::kMrGpsrs, true},
      {700, 3, 103, Algorithm::kMrGpmrs, true},
      {1500, 4, 104, Algorithm::kMrGpmrs, false},
      {800, 5, 105, Algorithm::kMrGpsrs, false},
      {1000, 3, 106, Algorithm::kSkyMr, false},
  };

  // Serial reference: each query alone, each with its own private pool.
  std::vector<QuerySignal> serial(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const Dataset data = MakeDataset(specs[i]);
    auto result = ComputeSkyline(data, MakeConfig(specs[i], nullptr));
    ASSERT_TRUE(result.ok()) << "query " << i << ": " << result.status();
    serial[i] = SignalOf(*result, specs[i].cardinality);
  }

  // Concurrent: every query at once, all nesting onto one shared pool,
  // repeated a few rounds so interleavings vary.
  ThreadPool pool(4);
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<QuerySignal> concurrent(specs.size());
    std::vector<Status> statuses(specs.size(), Status::OK());
    std::vector<std::thread> threads;
    threads.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      threads.emplace_back([&, i] {
        const Dataset data = MakeDataset(specs[i]);
        auto result = ComputeSkyline(data, MakeConfig(specs[i], &pool));
        if (!result.ok()) {
          statuses[i] = result.status();
          return;
        }
        concurrent[i] = SignalOf(*result, specs[i].cardinality);
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(statuses[i].ok())
          << "round " << round << " query " << i << ": " << statuses[i];
      EXPECT_EQ(concurrent[i].skyline_ids, serial[i].skyline_ids)
          << "round " << round << " query " << i;
      EXPECT_EQ(concurrent[i].counters, serial[i].counters)
          << "round " << round << " query " << i;
    }
  }
}

TEST(ConcurrentQueriesTest, ResidentSessionMatchesSerialShimBitForBit) {
  // The serve-path analogue of the test above: one resident Session over
  // one dataset, answering a mixed set of QuerySpecs from many threads
  // at once. Every result must be bit-identical (skyline ids) to the
  // legacy one-shot ComputeSkyline shim, and the single-flight cache
  // must miss exactly once per distinct bitstring fingerprint.
  const Dataset data = data::GenerateAntiCorrelated(1400, 3, 108);

  Box box;
  box.lo = {0.0, 0.0, 0.0};
  box.hi = {0.6, 0.6, 0.6};
  std::vector<QuerySpec> specs(4);
  specs[0].algorithm = Algorithm::kMrGpsrs;
  specs[1].algorithm = Algorithm::kMrGpmrs;
  specs[2].algorithm = Algorithm::kMrGpmrs;
  specs[2].constraint = box;
  specs[3].algorithm = Algorithm::kMrBnl;

  // Serial reference through the one-shot shim.
  std::vector<std::vector<TupleId>> serial(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    RunnerConfig config;
    config.algorithm = specs[i].algorithm;
    // lint:allow(deprecated-constraint) reference runs the legacy shim
    config.constraint = specs[i].constraint;
    config.engine.num_map_tasks = 3;
    config.engine.num_reducers = 3;
    config.ppd.max_candidate = 5;
    auto result = ComputeSkyline(data, config);
    ASSERT_TRUE(result.ok()) << "query " << i << ": " << result.status();
    serial[i] = result->SkylineIds();
    std::sort(serial[i].begin(), serial[i].end());
  }

  ThreadPool pool(4);
  SessionOptions options;
  options.engine.num_map_tasks = 3;
  options.engine.num_reducers = 3;
  options.ppd.max_candidate = 5;
  options.pool = &pool;
  auto session = Session::Open(data, options);
  ASSERT_TRUE(session.ok()) << session.status();

  constexpr int kRounds = 3;
  const size_t total = kRounds * specs.size();
  std::vector<std::vector<TupleId>> concurrent(total);
  std::vector<Status> statuses(total, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    threads.emplace_back([&, i] {
      auto result = (*session)->Submit(specs[i % specs.size()]);
      if (!result.ok()) {
        statuses[i] = result.status();
        return;
      }
      concurrent[i] = result->SkylineIds();
      std::sort(concurrent[i].begin(), concurrent[i].end());
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < total; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << "query " << i << ": " << statuses[i];
    EXPECT_EQ(concurrent[i], serial[i % specs.size()]) << "query " << i;
  }
  // Two distinct fingerprints (shared unconstrained + constrained); the
  // baseline never touches the cache.
  const SessionStats stats = (*session)->stats();
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.cache_hits, kRounds * 3 - 2);
  EXPECT_EQ(stats.errors, 0);
}

TEST(ConcurrentQueriesTest, SharedMetricsRegistrySeesEveryQuery) {
  // Queries sharing a MetricsRegistry (the loadgen arrangement) must not
  // lose counter increments to races.
  obs::MetricsRegistry metrics;
  ThreadPool pool(4);
  const CaseSpec spec = {800, 3, 107, Algorithm::kMrGpmrs, false};
  const Dataset data = MakeDataset(spec);

  // One serial run to learn how many MapReduce jobs a query launches.
  RunnerConfig reference = MakeConfig(spec, nullptr);
  auto serial = ComputeSkyline(data, reference);
  ASSERT_TRUE(serial.ok());
  const auto jobs_per_query = static_cast<int64_t>(serial->jobs.size());
  ASSERT_GT(jobs_per_query, 0);

  constexpr int kQueries = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&] {
      RunnerConfig config = MakeConfig(spec, &pool);
      config.engine.metrics = &metrics;
      auto result = ComputeSkyline(data, config);
      if (!result.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(metrics.counter("mr.jobs_completed")->Value(),
            jobs_per_query * kQueries);
  EXPECT_EQ(metrics.sketch("mr.job_wall_us")->Snapshot().count(),
            static_cast<uint64_t>(jobs_per_query * kQueries));
}

}  // namespace
}  // namespace skymr
