// Tests of the open-loop traffic harness (bench/loadgen): schedule
// determinism, coordinated-omission-safe latency accounting, the
// skymr-load-v1 artifact, the doctor's load heuristics, and the flight
// recorder post-mortem flow on an injected fatal chaos fault.

#include "bench/loadgen/loadgen.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/doctor.h"
#include "src/obs/json_parse.h"
#include "src/obs/metrics.h"

namespace skymr::loadgen {
namespace {

/// A small fast mix so the harness tests run in well under a second.
std::vector<SizeClass> TinyMix() {
  std::vector<SizeClass> mix(2);
  mix[0] = {"tiny", 200, 3, data::Distribution::kIndependent,
            Algorithm::kMrGpsrs, /*constrained=*/false, /*weight=*/3};
  mix[1] = {"boxed", 250, 3, data::Distribution::kIndependent,
            Algorithm::kMrGpmrs, /*constrained=*/true, /*weight=*/1};
  return mix;
}

LoadConfig TinyConfig() {
  LoadConfig config;
  config.seed = 11;
  config.target_qps = 400.0;
  config.queries = 16;
  config.admission_slots = 2;
  config.threads = 4;
  config.mix = TinyMix();
  return config;
}

TEST(ArrivalScheduleTest, IsDeterministicAndSorted) {
  const LoadConfig config = TinyConfig();
  const ArrivalSchedule a = BuildSchedule(config);
  const ArrivalSchedule b = BuildSchedule(config);
  ASSERT_EQ(a.arrival_us.size(), static_cast<size_t>(config.queries));
  EXPECT_EQ(a.arrival_us, b.arrival_us);
  EXPECT_EQ(a.size_class, b.size_class);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_TRUE(std::is_sorted(a.arrival_us.begin(), a.arrival_us.end()));
  EXPECT_GT(a.arrival_us.front(), 0.0);

  LoadConfig reseeded = config;
  reseeded.seed = 12;
  const ArrivalSchedule c = BuildSchedule(reseeded);
  EXPECT_NE(a.hash, c.hash);
  EXPECT_NE(a.arrival_us, c.arrival_us);
}

TEST(RunLoadTest, RejectsBadConfigs) {
  LoadConfig config = TinyConfig();
  config.queries = 0;
  EXPECT_FALSE(RunLoad(config, nullptr, nullptr).ok());
  config = TinyConfig();
  config.target_qps = 0.0;
  EXPECT_FALSE(RunLoad(config, nullptr, nullptr).ok());
  config = TinyConfig();
  config.admission_slots = 0;
  EXPECT_FALSE(RunLoad(config, nullptr, nullptr).ok());
  config = TinyConfig();
  config.mix[0].weight = 0;
  config.mix[1].weight = 0;
  EXPECT_FALSE(RunLoad(config, nullptr, nullptr).ok());
}

TEST(RunLoadTest, DeterministicSignalIsBitIdenticalAcrossRuns) {
  const LoadConfig config = TinyConfig();
  auto first = RunLoad(config, nullptr, nullptr);
  auto second = RunLoad(config, nullptr, nullptr);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->schedule_hash, second->schedule_hash);
  ASSERT_EQ(first->outcomes.size(), second->outcomes.size());
  for (size_t i = 0; i < first->outcomes.size(); ++i) {
    const QueryOutcome& a = first->outcomes[i];
    const QueryOutcome& b = second->outcomes[i];
    EXPECT_EQ(a.query_id, b.query_id);
    EXPECT_EQ(a.size_class, b.size_class);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.comparisons, b.comparisons) << "query " << i;
    EXPECT_EQ(a.skyline_size, b.skyline_size) << "query " << i;
  }
  EXPECT_EQ(first->completed, config.queries);
  EXPECT_EQ(first->errors, 0);
}

TEST(RunLoadTest, RecordsQueryMetrics) {
  obs::MetricsRegistry metrics;
  const LoadConfig config = TinyConfig();
  auto report = RunLoad(config, &metrics, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(metrics.counter("query.completed")->Value(), config.queries);
  EXPECT_EQ(metrics.counter("query.errors")->Value(), 0);
  EXPECT_EQ(metrics.sketch("query.latency_us")->Snapshot().count(),
            static_cast<uint64_t>(config.queries));
  EXPECT_EQ(metrics.sketch("query.queue_wait_us")->Snapshot().count(),
            static_cast<uint64_t>(config.queries));
  EXPECT_EQ(metrics.gauge("query.inflight")->Value(), 0);
}

// The acceptance test for coordinated-omission safety: one injected slow
// query occupying the single admission slot must inflate the measured
// latency of queries *scheduled behind it* — their clocks started at
// arrival, not at dispatch.
TEST(RunLoadTest, SlowQueryInflatesLatencyOfSubsequentQueries) {
  LoadConfig config = TinyConfig();
  config.admission_slots = 1;
  config.queries = 10;
  config.target_qps = 1000.0;  // ~1ms apart: all arrive during the stall
  config.slow_query_index = 2;
  config.slow_query_ms = 300.0;
  auto report = RunLoad(config, nullptr, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::vector<QueryOutcome>& outcomes = report->outcomes;
  // Queries behind the stall: even though each *executes* quickly, their
  // latency from scheduled arrival carries the 300ms stall.
  for (int q = 3; q < config.queries; ++q) {
    const double latency_us =
        outcomes[q].done_us - outcomes[q].scheduled_us;
    const double queue_wait_us =
        outcomes[q].dispatch_us - outcomes[q].scheduled_us;
    EXPECT_GT(latency_us, 200e3) << "query " << q;
    EXPECT_GT(queue_wait_us, 200e3) << "query " << q;
  }
  // The queries admitted before the stall stay fast.
  for (int q = 0; q < 2; ++q) {
    EXPECT_LT(outcomes[q].done_us - outcomes[q].scheduled_us, 200e3)
        << "query " << q;
  }
  // And the aggregate tail tells the story: p99 >> p50.
  EXPECT_GT(report->latency_us.Quantile(0.99), 200e3);
}

TEST(LoadArtifactTest, WritesValidSchemaWithDeterministicRows) {
  const LoadConfig config = TinyConfig();
  auto report = RunLoad(config, nullptr, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  std::ostringstream os;
  WriteLoadArtifact(config, report.value(), os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->GetString("schema", ""), "skymr-load-v1");
  EXPECT_EQ(doc->GetString("bench", ""), "loadgen");
  const obs::JsonValue* rows = doc->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  // One aggregate row plus one per size class.
  ASSERT_EQ(rows->AsArray().size(), 1 + config.mix.size());
  const obs::JsonValue& agg = rows->AsArray()[0];
  EXPECT_EQ(agg.GetString("name", ""), "loadgen");
  const obs::JsonValue* det = agg.Find("deterministic");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->GetInt("queries", -1), config.queries);
  const uint64_t hash =
      (static_cast<uint64_t>(det->GetInt("schedule_hash_hi", 0)) << 32) |
      static_cast<uint64_t>(det->GetInt("schedule_hash_lo", 0));
  EXPECT_EQ(hash, report->schedule_hash);
  // Per-size query counts partition the schedule.
  int64_t total = 0;
  for (size_t i = 1; i < rows->AsArray().size(); ++i) {
    const obs::JsonValue* size_det = rows->AsArray()[i].Find("deterministic");
    ASSERT_NE(size_det, nullptr);
    total += size_det->GetInt("queries", 0);
  }
  EXPECT_EQ(total, config.queries);
  // The doctor accepts the artifact and a healthy tiny run is clean.
  auto findings = obs::AnalyzeLoadJson(os.str());
  ASSERT_TRUE(findings.ok()) << findings.status();
}

// ---------------------------------------------------------------------
// Serve mode: resident session + cross-query bitstring cache
// ---------------------------------------------------------------------

TEST(RunServeLoadTest, RejectsBadConfigs) {
  const Dataset data = data::GenerateIndependent(400, 3, 21);
  LoadConfig config = TinyConfig();
  config.resident = &data;
  config.queries = 0;
  EXPECT_FALSE(RunServeLoad(config, nullptr, nullptr).ok());
  config = TinyConfig();
  config.resident = &data;
  config.admission_slots = 2;
  config.small_reserved_slots = 2;  // leaves no slot for large queries
  EXPECT_FALSE(RunServeLoad(config, nullptr, nullptr).ok());
}

TEST(RunServeLoadTest, ResidentSessionSharesBitstringAcrossQueries) {
  const Dataset data = data::GenerateIndependent(400, 3, 21);
  LoadConfig config = TinyConfig();
  config.resident = &data;
  auto report = RunServeLoad(config, nullptr, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->serve);
  EXPECT_EQ(report->completed, config.queries);
  EXPECT_EQ(report->errors, 0);
  // TinyMix has two fingerprints (unconstrained + boxed); every query
  // past the two leaders rides the cache.
  EXPECT_EQ(report->session_cache_hits + report->session_cache_misses,
            config.queries);
  EXPECT_LE(report->session_cache_misses, 2);
  EXPECT_GT(report->session_cache_hits, 0);
  // The acceptance criterion: cache-hit queries skip the bitstring
  // phase entirely (one job), and the phase ran once per fingerprint.
  EXPECT_EQ(report->bitstring_jobs, report->session_cache_misses);
  for (const QueryOutcome& out : report->outcomes) {
    EXPECT_EQ(out.jobs, out.cache_hit ? 1 : 2)
        << "query " << out.query_id;
    EXPECT_GT(out.skyline_size, 0) << "query " << out.query_id;
  }
}

TEST(RunServeLoadTest, DeterministicSignalIsBitIdenticalAcrossRuns) {
  const Dataset data = data::GenerateIndependent(400, 3, 21);
  LoadConfig config = TinyConfig();
  config.resident = &data;
  auto first = RunServeLoad(config, nullptr, nullptr);
  auto second = RunServeLoad(config, nullptr, nullptr);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->schedule_hash, second->schedule_hash);
  EXPECT_EQ(first->session_cache_hits, second->session_cache_hits);
  EXPECT_EQ(first->session_cache_misses, second->session_cache_misses);
  EXPECT_EQ(first->bitstring_jobs, second->bitstring_jobs);
  ASSERT_EQ(first->outcomes.size(), second->outcomes.size());
  for (size_t i = 0; i < first->outcomes.size(); ++i) {
    const QueryOutcome& a = first->outcomes[i];
    const QueryOutcome& b = second->outcomes[i];
    EXPECT_EQ(a.size_class, b.size_class);
    EXPECT_EQ(a.comparisons, b.comparisons) << "query " << i;
    EXPECT_EQ(a.skyline_size, b.skyline_size) << "query " << i;
    EXPECT_EQ(a.cache_hit, b.cache_hit) << "query " << i;
  }
}

TEST(RunServeLoadTest, WarmupPrimesEveryClassOffClock) {
  const Dataset data = data::GenerateIndependent(400, 3, 21);
  LoadConfig config = TinyConfig();
  config.resident = &data;
  config.warmup = true;
  auto report = RunServeLoad(config, nullptr, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  // Warmup took the misses off-clock: every scheduled query hits. The
  // hit count also carries any warmup that found its phase already
  // cached (classes sharing a fingerprint).
  EXPECT_LE(report->session_cache_misses, 2);
  EXPECT_GE(report->session_cache_hits, report->completed);
  for (const QueryOutcome& out : report->outcomes) {
    EXPECT_TRUE(out.cache_hit) << "query " << out.query_id;
    EXPECT_EQ(out.jobs, 1) << "query " << out.query_id;
  }
}

TEST(RunServeLoadTest, PerClassSessionsWithoutResidentDataset) {
  LoadConfig config = TinyConfig();
  auto report = RunServeLoad(config, nullptr, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->serve);
  EXPECT_EQ(report->errors, 0);
  // One session per class, each with its own dataset: one miss each.
  EXPECT_EQ(report->session_cache_misses, 2);
  EXPECT_EQ(report->session_cache_hits + report->session_cache_misses,
            config.queries);
}

TEST(LoadArtifactTest, ServeArtifactCarriesSessionCounters) {
  const Dataset data = data::GenerateIndependent(400, 3, 21);
  LoadConfig config = TinyConfig();
  config.resident = &data;
  auto report = RunServeLoad(config, nullptr, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  std::ostringstream os;
  WriteLoadArtifact(config, report.value(), os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->GetString("schema", ""), "skymr-load-v1");
  const obs::JsonValue* cfg = doc->Find("config");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->GetString("mode", ""), "serve");
  const obs::JsonValue* load = doc->Find("load");
  ASSERT_NE(load, nullptr);
  const obs::JsonValue* counters = load->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetInt("session_cache_hits", -1),
            report->session_cache_hits);
  EXPECT_EQ(counters->GetInt("session_cache_misses", -1),
            report->session_cache_misses);
  // The cache-effectiveness signal is part of the *deterministic* diff
  // surface, so a regression that stops sharing the phase fails CI.
  const obs::JsonValue* rows = doc->Find("rows");
  ASSERT_NE(rows, nullptr);
  const obs::JsonValue* det = rows->AsArray()[0].Find("deterministic");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->GetInt("session_cache_hits", -1),
            report->session_cache_hits);
  EXPECT_EQ(det->GetInt("bitstring_jobs", -1), report->bitstring_jobs);
  auto findings = obs::AnalyzeLoadJson(os.str());
  ASSERT_TRUE(findings.ok()) << findings.status();
}

// The acceptance test for the crash flight recorder: a fatal chaos fault
// inside the engine (a task out of attempts) must leave a skymr-flight-v1
// dump on disk, and the dump must contain the failing query's events,
// findable by its query id.
TEST(FlightRecorderPostMortemTest, ChaosCrashDumpNamesFailingQuery) {
  const std::string dump_path =
      testing::TempDir() + "/loadgen_flight_dump.jsonl";
  std::remove(dump_path.c_str());

  obs::MetricsRegistry metrics;
  obs::Logger::Options log_options;
  log_options.metrics = &metrics;
  log_options.crash_dump_path = dump_path;
  obs::Logger logger(log_options);

  LoadConfig config = TinyConfig();
  config.chaos.seed = 99;
  config.chaos.crash_rate = 0.5;
  config.max_task_attempts = 1;  // first injected crash is fatal
  auto report = RunLoad(config, &metrics, &logger);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->errors, 0) << "chaos injected no fatal fault";
  EXPECT_TRUE(logger.crash_dumped());

  // The first query that failed is the one whose fatal fired the dump.
  uint64_t failed_query = 0;
  for (const QueryOutcome& out : report->outcomes) {
    if (!out.ok) {
      failed_query = out.query_id;
      break;
    }
  }
  ASSERT_NE(failed_query, 0u);

  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "no flight dump at " << dump_path;
  std::string header_line;
  ASSERT_TRUE(std::getline(dump, header_line));
  auto header = obs::ParseJson(header_line);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->GetString("schema", ""), "skymr-flight-v1");
  EXPECT_NE(header->GetString("reason", "").find("task.fatal"),
            std::string::npos);

  // Post-mortem: pick the failing query's records out of the dump.
  std::string line;
  bool saw_failed_query_event = false;
  bool saw_fatal_task_event = false;
  int records = 0;
  while (std::getline(dump, line)) {
    auto record = obs::ParseLogLine(line);
    ASSERT_TRUE(record.ok()) << line;
    ++records;
    if (record->query_id == failed_query) {
      saw_failed_query_event = true;
      if (std::string(record->event) == "task.fatal") {
        saw_fatal_task_event = true;
      }
    }
  }
  EXPECT_EQ(records, header->GetInt("records", -1));
  EXPECT_TRUE(saw_failed_query_event)
      << "dump has no events for failing query " << failed_query;
  EXPECT_TRUE(saw_fatal_task_event)
      << "dump lacks the task.fatal record of query " << failed_query;
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace skymr::loadgen
