#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/json_parse.h"
#include "tests/obs/json_test_util.h"

namespace skymr::obs {
namespace {

// ---------------------------------------------------------------------
// QuantileSketch: rank-error property.
// ---------------------------------------------------------------------

/// True q-quantile of `sorted` under the nearest-rank convention the
/// sketch uses (rank q*(n-1), rounded down — either neighbour order
/// statistic is accepted by the callers below).
double TrueQuantile(const std::vector<double>& sorted, double q) {
  const size_t rank = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[rank];
}

/// Asserts the sketch estimate is within the advertised relative error
/// of the true quantile, with one extra bucket width of slack for the
/// rank convention (neighbouring order statistics may sit in adjacent
/// buckets).
void ExpectQuantileClose(const QuantileSketch& sketch,
                         std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double truth = TrueQuantile(values, q);
  const double estimate = sketch.Quantile(q);
  // 3a covers midpoint rounding plus the rank-convention slack.
  const double tolerance = 3.0 * QuantileSketch::kRelativeError * truth;
  EXPECT_NEAR(estimate, truth, tolerance)
      << "q=" << q << " truth=" << truth << " estimate=" << estimate;
}

TEST(QuantileSketchTest, UniformRankError) {
  QuantileSketch sketch;
  std::vector<double> values;
  for (int i = 1; i <= 20000; ++i) {
    values.push_back(static_cast<double>(i));
    sketch.Add(static_cast<double>(i));
  }
  EXPECT_EQ(sketch.count(), 20000u);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    ExpectQuantileClose(sketch, values, q);
  }
  // Extremes clamp to the observed range.
  EXPECT_NEAR(sketch.Quantile(0.0), 1.0,
              3.0 * QuantileSketch::kRelativeError);
  EXPECT_NEAR(sketch.Quantile(1.0), 20000.0,
              3.0 * QuantileSketch::kRelativeError * 20000.0);
  EXPECT_GE(sketch.Quantile(0.0), sketch.min());
  EXPECT_LE(sketch.Quantile(1.0), sketch.max());
}

TEST(QuantileSketchTest, GeometricRankError) {
  // Five decades of spread: the log-bucket layout must hold its relative
  // error everywhere, not just near one scale.
  QuantileSketch sketch;
  std::vector<double> values;
  double v = 0.1;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(v);
    sketch.Add(v);
    v *= 1.012;
  }
  for (const double q : {0.5, 0.95, 0.99}) {
    ExpectQuantileClose(sketch, values, q);
  }
}

TEST(QuantileSketchTest, EmptyAndNonPositiveValues) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);

  sketch.Add(0.0);
  sketch.Add(-3.5);
  sketch.Add(std::nan(""));
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.zero_count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);
}

// ---------------------------------------------------------------------
// QuantileSketch: merge algebra.
// ---------------------------------------------------------------------

QuantileSketch SketchOf(const std::vector<double>& values) {
  QuantileSketch sketch;
  for (const double v : values) {
    sketch.Add(v);
  }
  return sketch;
}

TEST(QuantileSketchTest, MergeIsAssociativeBitForBit) {
  const QuantileSketch a = SketchOf({1.0, 5.0, 9.0, 0.0});
  const QuantileSketch b = SketchOf({2.0, 2.0, 700.0});
  const QuantileSketch c = SketchOf({0.004, 31.0});

  QuantileSketch left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  QuantileSketch right = b;  // a + (b + c)
  right.Merge(c);
  QuantileSketch a_first = a;
  a_first.Merge(right);

  EXPECT_EQ(left, a_first);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(left.Quantile(q), a_first.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeIsCommutative) {
  const QuantileSketch a = SketchOf({1.0, 2.0, 3.0});
  const QuantileSketch b = SketchOf({100.0, 0.5});
  QuantileSketch ab = a;
  ab.Merge(b);
  QuantileSketch ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(QuantileSketchTest, MergeEqualsCombinedStream) {
  // Splitting one stream across tasks and merging must agree exactly
  // with having sketched the whole stream in one place — the property
  // the per-task metric sketches rely on.
  std::vector<double> all;
  std::vector<double> half1;
  std::vector<double> half2;
  for (int i = 0; i < 500; ++i) {
    const double v = 0.5 * i * i + 1.0;
    all.push_back(v);
    (i % 2 == 0 ? half1 : half2).push_back(v);
  }
  QuantileSketch merged = SketchOf(half1);
  merged.Merge(SketchOf(half2));
  EXPECT_EQ(merged, SketchOf(all));
}

TEST(QuantileSketchTest, FromPartsRoundTrips) {
  const QuantileSketch original = SketchOf({0.0, 3.0, 3.0, 1e6});
  const QuantileSketch rebuilt = QuantileSketch::FromParts(
      original.buckets(), original.count(), original.sum(), original.min(),
      original.max());
  EXPECT_EQ(rebuilt, original);
  EXPECT_DOUBLE_EQ(rebuilt.Quantile(0.5), original.Quantile(0.5));
}

// ---------------------------------------------------------------------
// MetricsRegistry.
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  MetricsRegistry::Gauge* g = registry.gauge("mr.inflight_jobs");
  MetricsRegistry::Counter* c = registry.counter("mr.jobs_completed");
  MetricsRegistry::Sketch* s = registry.sketch("mr.job_wall_us");
  EXPECT_EQ(registry.gauge("mr.inflight_jobs"), g);
  EXPECT_EQ(registry.counter("mr.jobs_completed"), c);
  EXPECT_EQ(registry.sketch("mr.job_wall_us"), s);

  g->Set(7);
  g->Add(-2);
  c->Add(3);
  s->Record(125.0);
  s->Record(250.0);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauges.at("mr.inflight_jobs"), 5);
  EXPECT_EQ(snap.counters.at("mr.jobs_completed"), 3);
  EXPECT_EQ(snap.sketches.at("mr.job_wall_us").count(), 2u);
  EXPECT_GE(snap.uptime_seconds, 0.0);
}

TEST(MetricsRegistryTest, SketchSnapshotMatchesPlainSketch) {
  MetricsRegistry registry;
  MetricsRegistry::Sketch* live = registry.sketch("x");
  QuantileSketch plain;
  for (const double v : {0.0, 1.0, 42.0, 42.0, 9999.5}) {
    live->Record(v);
    plain.Add(v);
  }
  EXPECT_EQ(live->Snapshot(), plain);
}

TEST(MetricsRegistryTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* counter = registry.counter("events");
  MetricsRegistry::Sketch* sketch = registry.sketch("latency");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        sketch->Record(static_cast<double>(t * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(sketch->Snapshot().count(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, ScopedGaugeDeltaRestoresAndToleratesNull) {
  MetricsRegistry registry;
  MetricsRegistry::Gauge* gauge = registry.gauge("depth");
  {
    ScopedGaugeDelta outer(gauge, 1);
    EXPECT_EQ(gauge->Value(), 1);
    {
      ScopedGaugeDelta inner(gauge, 1);
      EXPECT_EQ(gauge->Value(), 2);
    }
    EXPECT_EQ(gauge->Value(), 1);
  }
  EXPECT_EQ(gauge->Value(), 0);
  { ScopedGaugeDelta none(nullptr, 1); }  // Must not crash.
}

// ---------------------------------------------------------------------
// MetricsSampler.
// ---------------------------------------------------------------------

TEST(MetricsSamplerTest, CollectsSamplesAndStopsIdempotently) {
  MetricsRegistry registry;
  registry.gauge("mr.inflight_jobs")->Set(2);
  registry.counter("mr.jobs_completed")->Add(5);
  MetricsSampler sampler(&registry, /*period_ms=*/1);
  while (sampler.samples_taken() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  sampler.Stop();  // Idempotent.

  const std::vector<MetricsSample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 3u);
  EXPECT_GE(sampler.samples_taken(), samples.size());
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].uptime_seconds, samples[i - 1].uptime_seconds);
  }
  const MetricsSample& last = samples.back();
  EXPECT_EQ(last.gauges.at("mr.inflight_jobs"), 2);
  EXPECT_EQ(last.counters.at("mr.jobs_completed"), 5);
  // The sampler's own cost feeds the doctor's overhead check.
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GE(snap.sketches.at("mr.sampler_sample_us").count(),
            samples.size());
}

TEST(MetricsSamplerTest, RingDropsOldestPastMaxSamples) {
  MetricsRegistry registry;
  MetricsSampler sampler(&registry, /*period_ms=*/1, /*max_samples=*/2);
  while (sampler.samples_taken() < 6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  EXPECT_LE(sampler.Samples().size(), 2u);
  EXPECT_GE(sampler.samples_taken(), 6u);
}

// ---------------------------------------------------------------------
// JSON export (skymr-metrics-v1).
// ---------------------------------------------------------------------

TEST(MetricsJsonTest, ExportsValidSchemaDocument) {
  MetricsRegistry registry;
  registry.gauge("mr.inflight_jobs")->Set(1);
  registry.counter("mr.jobs_completed")->Add(4);
  MetricsRegistry::Sketch* wall = registry.sketch("mr.job_wall_us");
  for (int i = 1; i <= 100; ++i) {
    wall->Record(static_cast<double>(i));
  }

  std::vector<MetricsSample> samples(1);
  samples[0].uptime_seconds = 0.25;
  samples[0].sample_cost_us = 12.0;
  samples[0].gauges["mr.inflight_jobs"] = 1;
  samples[0].counters["mr.jobs_completed"] = 2;

  std::ostringstream os;
  registry.WriteJson(os, samples);
  const std::string text = os.str();
  EXPECT_EQ(testing::JsonParseError(text), "") << text;

  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->GetString("schema", ""), kMetricsSchemaVersion);
  EXPECT_GE(doc->GetDouble("uptime_seconds", -1.0), 0.0);

  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* jobs = counters->Find("mr.jobs_completed");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->GetInt("value", 0), 4);
  EXPECT_GT(jobs->GetDouble("rate_per_s", 0.0), 0.0);

  const JsonValue* sketches = doc->Find("sketches");
  ASSERT_NE(sketches, nullptr);
  const JsonValue* sk = sketches->Find("mr.job_wall_us");
  ASSERT_NE(sk, nullptr);
  EXPECT_EQ(sk->GetInt("count", 0), 100);
  const double p50 = sk->GetDouble("p50", 0.0);
  const double p95 = sk->GetDouble("p95", 0.0);
  const double p99 = sk->GetDouble("p99", 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 50.0, 3.0);
  EXPECT_DOUBLE_EQ(sk->GetDouble("relative_error", 0.0),
                   QuantileSketch::kRelativeError);

  const JsonValue* sample_rows = doc->Find("samples");
  ASSERT_NE(sample_rows, nullptr);
  ASSERT_TRUE(sample_rows->is_array());
  ASSERT_EQ(sample_rows->AsArray().size(), 1u);
  EXPECT_DOUBLE_EQ(
      sample_rows->AsArray()[0].GetDouble("uptime_seconds", 0.0), 0.25);
}

TEST(MetricsJsonTest, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.counter("n")->Add(1);
  const std::string path =
      ::testing::TempDir() + "/skymr_metrics_test.json";
  ASSERT_TRUE(registry.WriteJsonFile(path, {}).ok());
  auto doc = ParseJsonFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->GetString("schema", ""), kMetricsSchemaVersion);
}

}  // namespace
}  // namespace skymr::obs
