#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tests/obs/json_test_util.h"

namespace skymr::obs {
namespace {

/// Stops collection and drops all events, whatever a test left behind.
/// The tracer is process-global, so every test starts from this.
void ResetTracer() {
  StopTracing();
  ClearTrace();
}

const TraceEventView* FindEvent(const std::vector<TraceEventView>& events,
                                const std::string& name) {
  const auto it =
      std::find_if(events.begin(), events.end(),
                   [&](const TraceEventView& e) { return e.name == name; });
  return it == events.end() ? nullptr : &*it;
}

TEST(TraceTest, InactiveByDefaultAndSpansAreFree) {
  ResetTracer();
  EXPECT_FALSE(TracingActive());
  {
    SKYMR_TRACE_SPAN("should.not.record");
  }
  SKYMR_TRACE_INSTANT("also.not.recorded");
  EXPECT_EQ(CollectedEventCount(), 0u);
}

TEST(TraceTest, RecordsSpanWithArgsAndDuration) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  ResetTracer();
  StartTracing();
  {
    SKYMR_TRACE_SPAN("outer.span", "alpha", 7, "beta", -3);
  }
  StopTracing();
  const std::vector<TraceEventView> events = SnapshotTrace();
  ASSERT_EQ(events.size(), 1u);
  const TraceEventView& e = events[0];
  EXPECT_EQ(e.name, "outer.span");
  EXPECT_EQ(e.phase, 'X');
  EXPECT_GE(e.ts_us, 0.0);
  EXPECT_GE(e.dur_us, 0.0);
  EXPECT_EQ(e.depth, 0u);
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0].first, "alpha");
  EXPECT_EQ(e.args[0].second, 7);
  EXPECT_EQ(e.args[1].first, "beta");
  EXPECT_EQ(e.args[1].second, -3);
}

TEST(TraceTest, NestedSpansGetIncreasingDepth) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  ResetTracer();
  StartTracing();
  {
    SKYMR_TRACE_SPAN("outer");
    {
      SKYMR_TRACE_SPAN("inner");
      SKYMR_TRACE_INSTANT("tick");
    }
  }
  StopTracing();
  const std::vector<TraceEventView> events = SnapshotTrace();
  ASSERT_EQ(events.size(), 3u);
  const TraceEventView* outer = FindEvent(events, "outer");
  const TraceEventView* inner = FindEvent(events, "inner");
  const TraceEventView* tick = FindEvent(events, "tick");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(tick->phase, 'i');
  // The child starts no earlier and ends no later than its parent.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
}

TEST(TraceTest, StopTracingFreezesTheBuffer) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  ResetTracer();
  StartTracing();
  { SKYMR_TRACE_SPAN("kept"); }
  StopTracing();
  { SKYMR_TRACE_SPAN("dropped"); }
  EXPECT_EQ(CollectedEventCount(), 1u);
  // StartTracing discards the previous session's events.
  StartTracing();
  EXPECT_EQ(CollectedEventCount(), 0u);
  StopTracing();
}

TEST(TraceTest, LongNamesAreTruncatedNotCorrupted) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  ResetTracer();
  StartTracing();
  const std::string long_name(200, 'x');
  { SKYMR_TRACE_SPAN(long_name); }
  StopTracing();
  const std::vector<TraceEventView> events = SnapshotTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, std::string(internal::kMaxNameLength, 'x'));
}

TEST(TraceTest, ChromeTraceExportGolden) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  ResetTracer();
  StartTracing();
  {
    SKYMR_TRACE_SPAN("golden.span", "task", 3);
    SKYMR_TRACE_INSTANT("golden.instant");
  }
  StopTracing();
  std::ostringstream os;
  WriteChromeTrace(os);
  const std::string json = os.str();

  // The document must be valid JSON end to end.
  EXPECT_EQ(testing::JsonParseError(json), "") << json;

  // Stable envelope: schema version and Chrome's display hint.
  EXPECT_NE(json.find("\"schema\":\"skymr-trace-v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);

  // The complete event keeps its name, category, phase, and args.
  EXPECT_NE(json.find("\"name\":\"golden.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"skymr\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"task\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  // The instant event carries Chrome's required scope key.
  EXPECT_NE(json.find("\"name\":\"golden.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  ResetTracer();
}

TEST(TraceTest, DisabledBuildReportsCompiledOut) {
  // This test asserts the compile-time constant is consistent with the
  // runtime behavior, whichever way the build was configured.
  if (TracingCompiledIn()) {
    ResetTracer();
    StartTracing();
    EXPECT_TRUE(TracingActive());
    ResetTracer();
  } else {
    StartTracing();
    EXPECT_FALSE(TracingActive());
  }
}

}  // namespace
}  // namespace skymr::obs
