#include "src/obs/bench_artifact.h"

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/obs/json_parse.h"

namespace skymr::obs {
namespace {

TEST(WallStatsTest, KnownSamples) {
  // Odd count: median is the middle element; MAD over {2, 0, 3} -> 2.
  const WallStats odd = WallStats::FromSamples({5.0, 2.0, 7.0});
  EXPECT_EQ(odd.reps, 3);
  EXPECT_DOUBLE_EQ(odd.median_seconds, 5.0);
  EXPECT_DOUBLE_EQ(odd.mad_seconds, 2.0);
  EXPECT_DOUBLE_EQ(odd.min_seconds, 2.0);
  EXPECT_DOUBLE_EQ(odd.max_seconds, 7.0);
  EXPECT_NEAR(odd.mean_seconds, 14.0 / 3.0, 1e-12);

  // Even count: median is the midpoint of the middle pair.
  const WallStats even = WallStats::FromSamples({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(even.median_seconds, 2.5);
  EXPECT_DOUBLE_EQ(even.mad_seconds, 1.0);
  EXPECT_DOUBLE_EQ(even.mean_seconds, 2.5);
  // Population stddev of {1,2,3,4} is sqrt(1.25).
  EXPECT_NEAR(even.cv, std::sqrt(1.25) / 2.5, 1e-12);
}

TEST(WallStatsTest, SingleAndEmptySamples) {
  const WallStats one = WallStats::FromSamples({0.25});
  EXPECT_EQ(one.reps, 1);
  EXPECT_DOUBLE_EQ(one.median_seconds, 0.25);
  EXPECT_DOUBLE_EQ(one.mad_seconds, 0.0);
  EXPECT_DOUBLE_EQ(one.cv, 0.0);

  const WallStats none = WallStats::FromSamples({});
  EXPECT_EQ(none.reps, 0);
  EXPECT_DOUBLE_EQ(none.median_seconds, 0.0);
}

SkylineResult SmallRun() {
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kAntiCorrelated;
  gen.cardinality = 600;
  gen.dim = 3;
  gen.seed = 17;
  const Dataset data = std::move(data::Generate(gen)).value();
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 2;
  config.ppd.max_candidate = 8;
  auto result = ComputeSkyline(data, config);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(DeterministicCountersTest, HarvestsStructuralCountersAndExcludesNoise) {
  const SkylineResult result = SmallRun();
  const auto det = DeterministicCounters(result, 600);
  EXPECT_EQ(det.at("input_tuples"), 600);
  EXPECT_EQ(det.at("skyline_size"),
            static_cast<int64_t>(result.skyline.size()));
  EXPECT_EQ(det.at("ppd"), static_cast<int64_t>(result.ppd));
  EXPECT_GT(det.at("nonempty_partitions"), 0);
  EXPECT_EQ(det.at("jobs"), static_cast<int64_t>(result.jobs.size()));
  EXPECT_GT(det.at("shuffle_bytes"), 0);
  // Engine structure counters from the PR's job hooks are present.
  EXPECT_GT(det.at("mr.map_input_records"), 0);
  EXPECT_GT(det.at("mr.map_tasks"), 0);
  // Scheduling-dependent counters never enter the deterministic gate.
  EXPECT_EQ(det.count("mr.task_retries"), 0u);
  EXPECT_EQ(det.count("mr.cache_hits"), 0u);
  EXPECT_EQ(det.count("mr.cache_misses"), 0u);
}

TEST(DeterministicCountersTest, BitIdenticalAcrossRuns) {
  const auto a = DeterministicCounters(SmallRun(), 600);
  const auto b = DeterministicCounters(SmallRun(), 600);
  EXPECT_EQ(a, b);
}

TEST(BenchArtifactTest, WritesParsableSchemaDocument) {
  BenchArtifact artifact("bench_unit_test");
  artifact.environment().reps = 3;

  BenchRow row;
  row.name = "row/one";
  row.wall = WallStats::FromSamples({0.1, 0.2, 0.3});
  row.metrics["modeled_s"] = 1.5;
  row.deterministic["skyline_size"] = 42;
  artifact.AddRow(std::move(row));
  EXPECT_EQ(artifact.row_count(), 1u);

  std::ostringstream os;
  artifact.Write(os);
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status() << "\n" << os.str();

  EXPECT_EQ(doc->GetString("schema", ""), kBenchSchemaVersion);
  EXPECT_EQ(doc->GetString("bench", ""), "bench_unit_test");
  const JsonValue* env = doc->Find("environment");
  ASSERT_NE(env, nullptr);
  EXPECT_FALSE(env->GetString("compiler", "").empty());
  EXPECT_FALSE(env->GetString("kernel_backend", "").empty());
  EXPECT_EQ(env->GetInt("reps", 0), 3);
  EXPECT_GT(env->GetInt("threads", 0), 0);

  const JsonValue* rows = doc->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->AsArray().size(), 1u);
  const JsonValue& parsed = rows->AsArray()[0];
  EXPECT_EQ(parsed.GetString("name", ""), "row/one");
  EXPECT_DOUBLE_EQ(parsed.Find("wall")->GetDouble("median_seconds", 0.0),
                   0.2);
  EXPECT_DOUBLE_EQ(parsed.Find("metrics")->GetDouble("modeled_s", 0.0), 1.5);
  EXPECT_EQ(parsed.Find("deterministic")->GetInt("skyline_size", 0), 42);
}

TEST(BenchArtifactTest, WriteFileRejectsBadPath) {
  const BenchArtifact artifact("bench_unit_test");
  EXPECT_FALSE(artifact.WriteFile("/nonexistent-dir/artifact.json").ok());
}

TEST(BenchRepsTest, ClampsEnvironmentValue) {
  // No env -> 1 (the test runner does not set SKYMR_BENCH_REPS).
  EXPECT_EQ(BenchRepsFromEnv(), 1);
}

}  // namespace
}  // namespace skymr::obs
