#include "src/obs/json_parse.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace skymr::obs {
namespace {

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("3.5")->AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(ParseJson("-1e3")->AsDouble(), -1000.0);
  EXPECT_EQ(ParseJson("42")->AsInt(), 42);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, ParsesStringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->AsString(), "a\"b\\c\n\tA");
}

TEST(JsonParseTest, DecodesNonAsciiBmpEscape) {
  auto v = ParseJson(R"("é")");  // é as UTF-8.
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->AsString(), "\xc3\xa9");
}

TEST(JsonParseTest, ParsesNestedDocument) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsDouble(), 2.0);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->AsBool());
  EXPECT_TRUE(v->Find("c")->Find("d")->is_null());
}

TEST(JsonParseTest, ConvenienceLookupsFallBack) {
  auto v = ParseJson(R"({"n": 7, "s": "x"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetInt("n", -1), 7);
  EXPECT_EQ(v->GetInt("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v->GetDouble("n", 0.0), 7.0);
  EXPECT_EQ(v->GetString("s", "fb"), "x");
  EXPECT_EQ(v->GetString("missing", "fb"), "fb");
  // Wrong-kind member also falls back.
  EXPECT_EQ(v->GetInt("s", -1), -1);
  // Find on a non-object is nullptr, never a crash.
  EXPECT_EQ(ParseJson("3")->Find("x"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nan").ok());
}

TEST(JsonParseTest, RejectsTrailingData) {
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("{} []").ok());
  // Trailing whitespace is fine.
  EXPECT_TRUE(ParseJson("{}  \n").ok());
}

TEST(JsonParseTest, RejectsPathologicalNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParseTest, NestingDepthLimitIsExact) {
  // A balanced document at exactly kMaxJsonNestingDepth parses; one level
  // deeper is rejected with a clean Status (no stack overflow). The limit
  // is public so harnesses and tests can probe the boundary directly.
  const auto nested = [](int depth) {
    std::string doc(static_cast<size_t>(depth), '[');
    doc += "1";
    doc += std::string(static_cast<size_t>(depth), ']');
    return doc;
  };
  auto at_limit = ParseJson(nested(kMaxJsonNestingDepth));
  EXPECT_TRUE(at_limit.ok()) << at_limit.status();
  auto past_limit = ParseJson(nested(kMaxJsonNestingDepth + 1));
  ASSERT_FALSE(past_limit.ok());
  EXPECT_EQ(past_limit.status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonParseTest, LastDuplicateKeyWins) {
  auto v = ParseJson(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetInt("k", 0), 2);
}

TEST(JsonParseTest, ParseJsonFileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/json_parse_test_doc.json";
  {
    std::ofstream out(path);
    out << R"({"schema": "test", "rows": [1, 2, 3]})";
  }
  auto v = ParseJsonFile(path);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->GetString("schema", ""), "test");
  EXPECT_EQ(v->Find("rows")->AsArray().size(), 3u);
  std::remove(path.c_str());

  EXPECT_FALSE(ParseJsonFile("/nonexistent-dir/x.json").ok());
}

}  // namespace
}  // namespace skymr::obs
