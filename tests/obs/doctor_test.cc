#include "src/obs/doctor.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/obs/job_report.h"

namespace skymr::obs {
namespace {

/// Minimal syntactically valid skymr-report-v1 skeleton; tests splice
/// extra members into the top level via `extra`.
std::string Report(const std::string& extra) {
  std::string doc = R"({"schema": "skymr-report-v1", "algorithm": "mr-gpsrs")";
  if (!extra.empty()) {
    doc += ", " + extra;
  }
  doc += "}";
  return doc;
}

std::vector<Finding> Analyze(const std::string& json) {
  auto findings = AnalyzeReportJson(json);
  EXPECT_TRUE(findings.ok()) << findings.status();
  return findings.ok() ? std::move(findings).value()
                       : std::vector<Finding>{};
}

bool HasCode(const std::vector<Finding>& findings, const std::string& code) {
  for (const Finding& finding : findings) {
    if (finding.code == code) {
      return true;
    }
  }
  return false;
}

TEST(DoctorTest, RejectsWrongSchema) {
  EXPECT_FALSE(AnalyzeReportJson(R"({"schema": "other-v9"})").ok());
  EXPECT_FALSE(AnalyzeReportJson("[1, 2]").ok());
  EXPECT_FALSE(AnalyzeReportJson("not json").ok());
}

TEST(DoctorTest, MinimalReportIsClean) {
  EXPECT_TRUE(Analyze(Report("")).empty());
}

TEST(DoctorTest, FlagsMapTaskSkew) {
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs", "skew": {
           "max_map_busy_seconds": 1.0, "median_map_busy_seconds": 0.1,
           "max_reduce_busy_seconds": 0.0,
           "median_reduce_busy_seconds": 0.0}}])");
  const auto findings = Analyze(json);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "task-skew");
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("map"), std::string::npos);
}

TEST(DoctorTest, ExtremeSkewEscalatesToCritical) {
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs", "skew": {
           "max_map_busy_seconds": 2.0, "median_map_busy_seconds": 0.1,
           "max_reduce_busy_seconds": 0.0,
           "median_reduce_busy_seconds": 0.0}}])");
  const auto findings = Analyze(json);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kCritical);
}

TEST(DoctorTest, FastSkewedTasksStaySilent) {
  // 10x ratio but everything under the busy-seconds floor: healthy smoke
  // runs must never trip the doctor.
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs", "skew": {
           "max_map_busy_seconds": 0.01, "median_map_busy_seconds": 0.001,
           "max_reduce_busy_seconds": 0.0,
           "median_reduce_busy_seconds": 0.0}}])");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, FlagsReduceImbalanceWithGpmrsHint) {
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpmrs", "reduce_tasks": [
           {"input_records": 100}, {"input_records": 120},
           {"input_records": 5000}]}])");
  const auto findings = Analyze(json);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "reduce-imbalance");
  EXPECT_NE(findings[0].message.find("Definition-5"), std::string::npos);
}

TEST(DoctorTest, SmallReducersStaySilent) {
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpmrs", "reduce_tasks": [
           {"input_records": 10}, {"input_records": 900}]}])");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, FlagsCoarsePpd) {
  // 100k tuples in 3 dims: candidate max is floor(100000^(1/3)) = 46;
  // ppd=2 leaves 8 cells and ~12.5k tuples per partition.
  const std::string json = Report(
      R"("dim": 3, "input_tuples": 100000, "ppd": 2,
         "nonempty_partitions": 8, "pruned_partitions": 0)");
  const auto findings = Analyze(json);
  EXPECT_TRUE(HasCode(findings, "ppd-coarse"));
}

TEST(DoctorTest, FlagsPpdSkew) {
  // A fine grid (ppd=40, d=3 -> 64000 cells) over 100k tuples should
  // leave ~1.3 tuples per non-empty partition under uniformity; 50
  // non-empty partitions means heavy clustering.
  const std::string json = Report(
      R"("dim": 3, "input_tuples": 100000, "ppd": 40,
         "nonempty_partitions": 50, "pruned_partitions": 0)");
  const auto findings = Analyze(json);
  EXPECT_TRUE(HasCode(findings, "ppd-skew"));
}

TEST(DoctorTest, UniformGridStaysSilent) {
  // 100k tuples, ppd=40 (64000 cells): uniform occupancy predicts about
  // 49.8k non-empty partitions; reporting that is healthy.
  const std::string json = Report(
      R"("dim": 3, "input_tuples": 100000, "ppd": 40,
         "nonempty_partitions": 49800, "pruned_partitions": 20000)");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, TinyInputNeverTripsGridChecks) {
  const std::string json = Report(
      R"("dim": 3, "input_tuples": 500, "ppd": 2,
         "nonempty_partitions": 2, "pruned_partitions": 0)");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, FlagsCostModelDeviation) {
  const std::string json = Report(
      R"("cost_model": {
           "predicted_mapper_comparisons": 1000.0,
           "observed_max_mapper_comparisons": 50000,
           "predicted_reducer_comparisons": 1000.0,
           "observed_max_reducer_comparisons": 900})");
  const auto findings = Analyze(json);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "cost-model");
  EXPECT_NE(findings[0].message.find("mapper"), std::string::npos);
}

TEST(DoctorTest, FlagsIneffectivePruningAsInfo) {
  const std::string json = Report(
      R"("dim": 4, "input_tuples": 100000, "ppd": 10,
         "nonempty_partitions": 10000, "pruned_partitions": 3)");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "pruning"));
  for (const Finding& finding : findings) {
    if (finding.code == "pruning") {
      EXPECT_EQ(finding.severity, Severity::kInfo);
    }
  }
}

TEST(DoctorTest, FindingsSortMostSevereFirst) {
  const std::string json = Report(
      R"("dim": 4, "input_tuples": 100000, "ppd": 10,
         "nonempty_partitions": 10000, "pruned_partitions": 3,
         "jobs": [{"name": "mr-gpsrs", "skew": {
           "max_map_busy_seconds": 2.0, "median_map_busy_seconds": 0.1,
           "max_reduce_busy_seconds": 0.0,
           "median_reduce_busy_seconds": 0.0}}])");
  const auto findings = Analyze(json);
  ASSERT_GE(findings.size(), 2u);
  EXPECT_EQ(findings.front().severity, Severity::kCritical);
  EXPECT_EQ(findings.back().severity, Severity::kInfo);
}

TEST(DoctorTest, FlagsRetryStorm) {
  // 6 retries over 4 tasks = 1.5 retries/task: warning territory.
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs",
           "counters": {"mr.task_retries": 6},
           "map_tasks": [{}, {}, {}], "reduce_tasks": [{}]}])");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "retry-storm")) << RenderFindings(findings);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
}

TEST(DoctorTest, ExtremeRetryStormEscalatesToCritical) {
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs",
           "counters": {"mr.task_retries": 20},
           "map_tasks": [{}, {}, {}], "reduce_tasks": [{}]}])");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "retry-storm"));
  EXPECT_EQ(findings[0].severity, Severity::kCritical);
}

TEST(DoctorTest, RoutineRetriesStaySilent) {
  // One retry on a 13-task job is normal fault tolerance, not a storm.
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs",
           "counters": {"mr.task_retries": 1},
           "map_tasks": [{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}],
           "reduce_tasks": [{}]}])");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, FlagsBlacklistedWorkers) {
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs",
           "counters": {"mr.blacklisted_workers": 2}}])");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "worker-blacklist"));
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
}

TEST(DoctorTest, ReportsSpeculationAsInfo) {
  const std::string json = Report(
      R"("jobs": [{"name": "mr-gpsrs",
           "counters": {"mr.speculative_launched": 3,
                        "mr.speculative_wins": 1}}])");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "speculation"));
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
}

TEST(DoctorTest, FlagsDegradedPipeline) {
  const auto findings = Analyze(Report(R"("degraded": true)"));
  ASSERT_TRUE(HasCode(findings, "degraded"));
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_TRUE(Analyze(Report(R"("degraded": false)")).empty());
}

TEST(DoctorTest, FlagsWindowKernelPastBbsCrossover) {
  // 10k tuples at dim=6, 2M comparisons (200/tuple), no skymr.bbs.*
  // counters: a window kernel ground through the crossover region.
  const std::string json = Report(
      R"("dim": 6, "input_tuples": 10000,
         "jobs": [{"name": "mr-gpsrs",
           "counters": {"skymr.tuple_comparisons": 2000000}}])");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "local-kernel")) << RenderFindings(findings);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("--local-algorithm=bbs"),
            std::string::npos);
}

TEST(DoctorTest, LowDimWindowKernelStaysSilent) {
  // Same comparison volume at dim=4: below the BBS crossover
  // dimensionality, so the window kernel is the right call.
  const std::string json = Report(
      R"("dim": 4, "input_tuples": 10000,
         "jobs": [{"name": "mr-gpsrs",
           "counters": {"skymr.tuple_comparisons": 2000000}}])");
  EXPECT_FALSE(HasCode(Analyze(json), "local-kernel"));
}

TEST(DoctorTest, SmallInputNeverTripsKernelCheck) {
  const std::string json = Report(
      R"("dim": 6, "input_tuples": 3000,
         "jobs": [{"name": "mr-gpsrs",
           "counters": {"skymr.tuple_comparisons": 2000000}}])");
  EXPECT_FALSE(HasCode(Analyze(json), "local-kernel"));
}

TEST(DoctorTest, CheapWindowKernelStaysSilent) {
  // dim=6 but only ~3 comparisons/tuple: correlated-ish data where any
  // kernel is fine.
  const std::string json = Report(
      R"("dim": 6, "input_tuples": 10000,
         "jobs": [{"name": "mr-gpsrs",
           "counters": {"skymr.tuple_comparisons": 30000}}])");
  EXPECT_FALSE(HasCode(Analyze(json), "local-kernel"));
}

TEST(DoctorTest, ReportsBbsOverkillAsInfo) {
  // skymr.bbs.* counters present but only ~3 comparisons/tuple: the
  // R-tree build bought nothing SFS would not have done cheaper.
  const std::string json = Report(
      R"("dim": 2, "input_tuples": 10000,
         "jobs": [{"name": "mr-gpsrs",
           "counters": {"skymr.tuple_comparisons": 30000,
                        "skymr.bbs.nodes_visited": 900}}])");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "local-kernel")) << RenderFindings(findings);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_NE(findings[0].message.find("--local-algorithm=sfs"),
            std::string::npos);
}

TEST(DoctorTest, BusyBbsRunStaysSilent) {
  // BBS doing real work (many comparisons/tuple) is exactly the right
  // kernel — neither direction should speak.
  const std::string json = Report(
      R"("dim": 8, "input_tuples": 10000,
         "jobs": [{"name": "mr-gpsrs",
           "counters": {"skymr.tuple_comparisons": 5000000,
                        "skymr.bbs.nodes_visited": 40000}}])");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, RenderFindingsFormats) {
  EXPECT_EQ(RenderFindings({}), "doctor: no findings\n");
  const std::string text = RenderFindings(
      {Finding{Severity::kWarning, "task-skew", "slow task"}});
  EXPECT_EQ(text, "WARNING [task-skew] slow task\n");
}

// ---------------------------------------------------------------------
// Critical-path findings (ISSUE 8): the doctor reads the report's
// critical_path block, so these splice one in directly.
// ---------------------------------------------------------------------

TEST(DoctorTest, FlagsCriticalPathPhase) {
  const std::string json = Report(
      R"("critical_path": {"makespan_seconds": 0.2,
           "phases": [
             {"phase": "local-skyline", "seconds": 0.184, "percent": 92.0,
              "what_if_free_percent": 88.0},
             {"phase": "shuffle", "seconds": 0.016, "percent": 8.0,
              "what_if_free_percent": 3.0}],
           "path": []})");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "critical-path-phase"))
      << RenderFindings(findings);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("local-skyline"), std::string::npos);
}

TEST(DoctorTest, FastCriticalPathStaysSilent) {
  // Same 92% concentration but a 10ms makespan: smoke-sized runs are
  // always dominated by something and must stay doctor-clean.
  const std::string json = Report(
      R"("critical_path": {"makespan_seconds": 0.01,
           "phases": [
             {"phase": "local-skyline", "seconds": 0.0092, "percent": 92.0,
              "what_if_free_percent": 88.0},
             {"phase": "shuffle", "seconds": 0.0008, "percent": 8.0,
              "what_if_free_percent": 3.0}],
           "path": []})");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, SinglePhasePathNeverTripsPhaseCheck) {
  // A one-phase path trivially owns 100% of itself; that is structure,
  // not a diagnosis.
  const std::string json = Report(
      R"("critical_path": {"makespan_seconds": 0.5,
           "phases": [{"phase": "merge", "seconds": 0.5, "percent": 100.0,
                       "what_if_free_percent": 100.0}],
           "path": []})");
  EXPECT_TRUE(Analyze(json).empty());
}

TEST(DoctorTest, FlagsStragglerOnCriticalPathByRatio) {
  const std::string json = Report(
      R"("critical_path": {"makespan_seconds": 0.2, "phases": [],
           "path": [
             {"job": "skyline", "kind": "map", "phase": "local-skyline",
              "task": 3, "attempts": 1, "seconds": 0.1,
              "wave_median_seconds": 0.01}]})");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "straggler-on-critical-path"))
      << RenderFindings(findings);
  EXPECT_NE(findings[0].message.find("10.0x"), std::string::npos);
}

TEST(DoctorTest, FlagsStragglerOnCriticalPathByRetries) {
  // Crash-retry chains leave the winning attempt's busy time normal; the
  // attempt count is the only scar, and it must be enough to fire.
  const std::string json = Report(
      R"("critical_path": {"makespan_seconds": 0.2, "phases": [],
           "path": [
             {"job": "skyline", "kind": "reduce", "phase": "merge",
              "task": 0, "attempts": 3, "seconds": 0.001,
              "wave_median_seconds": 0.001}]})");
  const auto findings = Analyze(json);
  ASSERT_TRUE(HasCode(findings, "straggler-on-critical-path"))
      << RenderFindings(findings);
  EXPECT_NE(findings[0].message.find("3 attempts"), std::string::npos);
}

TEST(DoctorTest, FastOrFirstAttemptPathStepsStaySilent) {
  // 10x over median but under the per-step floor, and a clean
  // first-attempt step: neither should speak.
  const std::string json = Report(
      R"("critical_path": {"makespan_seconds": 0.2, "phases": [],
           "path": [
             {"job": "skyline", "kind": "map", "phase": "local-skyline",
              "task": 1, "attempts": 1, "seconds": 0.01,
              "wave_median_seconds": 0.001},
             {"job": "skyline", "kind": "reduce", "phase": "merge",
              "task": 0, "attempts": 1, "seconds": 0.05,
              "wave_median_seconds": 0.04}]})");
  EXPECT_TRUE(Analyze(json).empty());
}

// ---------------------------------------------------------------------
// Metrics-snapshot findings (skymr-metrics-v1).
// ---------------------------------------------------------------------

/// Minimal skymr-metrics-v1 document with a sampler cost sketch whose
/// sum is `cost_us` microseconds over `uptime` seconds of registry life.
std::string Metrics(double uptime, double cost_us, int64_t count = 100) {
  std::ostringstream os;
  os << R"({"schema": "skymr-metrics-v1", "uptime_seconds": )" << uptime
     << R"(, "gauges": {}, "counters": {}, "sketches": {)"
     << R"("mr.sampler_sample_us": {"count": )" << count
     << R"(, "sum": )" << cost_us
     << R"(, "min": 1.0, "max": 9.0, "p50": 4.0, "p95": 8.0, "p99": 9.0,)"
     << R"( "relative_error": 0.01}}})";
  return os.str();
}

TEST(DoctorTest, MetricsRejectsWrongSchema) {
  EXPECT_FALSE(AnalyzeMetricsJson(R"({"schema": "skymr-report-v1"})").ok());
  EXPECT_FALSE(AnalyzeMetricsJson("[]").ok());
  EXPECT_FALSE(AnalyzeMetricsJson("nope").ok());
}

TEST(DoctorTest, FlagsSamplerOverhead) {
  // 50ms of sampling cost in 1s of uptime = 5% > the 2% budget.
  auto findings = AnalyzeMetricsJson(Metrics(1.0, 50000.0));
  ASSERT_TRUE(findings.ok()) << findings.status();
  ASSERT_TRUE(HasCode(*findings, "sampler-overhead"))
      << RenderFindings(*findings);
  EXPECT_EQ((*findings)[0].severity, Severity::kWarning);
}

TEST(DoctorTest, CheapSamplerStaysSilent) {
  // 5ms over 1s = 0.5%: well inside budget.
  auto findings = AnalyzeMetricsJson(Metrics(1.0, 5000.0));
  ASSERT_TRUE(findings.ok()) << findings.status();
  EXPECT_TRUE(findings->empty()) << RenderFindings(*findings);
}

TEST(DoctorTest, ShortLivedSamplerNeverTripsOverheadCheck) {
  // 50% overhead but only 0.1s of uptime: startup cost, not a trend.
  auto findings = AnalyzeMetricsJson(Metrics(0.1, 50000.0));
  ASSERT_TRUE(findings.ok()) << findings.status();
  EXPECT_TRUE(findings->empty()) << RenderFindings(*findings);
}

// ---------------------------------------------------------------------
// Load-artifact findings (skymr-load-v1).
// ---------------------------------------------------------------------

/// Minimal skymr-load-v1 document: `queries` measured latencies with the
/// given p50/p99, a queue-wait p99, and a log-drop counter.
std::string Load(int64_t queries, double p50_us, double p99_us,
                 double wait_p99_us, int64_t log_dropped = 0) {
  std::ostringstream os;
  os << R"({"schema": "skymr-load-v1", "bench": "loadgen", "load": {)"
     << R"("latency": {"count": )" << queries << R"(, "p50_us": )" << p50_us
     << R"(, "p95_us": )" << p99_us << R"(, "p99_us": )" << p99_us
     << R"(, "max_us": )" << p99_us << R"(, "mean_us": )" << p50_us << "}, "
     << R"("queue_wait": {"count": )" << queries
     << R"(, "p50_us": 1.0, "p95_us": )" << wait_p99_us
     << R"(, "p99_us": )" << wait_p99_us << R"(, "max_us": )" << wait_p99_us
     << R"(, "mean_us": 1.0}, )"
     << R"("counters": {"completed": )" << queries
     << R"(, "errors": 0, "deadline_missed": 0, "log_dropped": )"
     << log_dropped << "}}}";
  return os.str();
}

std::vector<Finding> AnalyzeLoadDoc(const std::string& json) {
  auto findings = AnalyzeLoadJson(json);
  EXPECT_TRUE(findings.ok()) << findings.status();
  return findings.ok() ? std::move(findings).value()
                       : std::vector<Finding>{};
}

TEST(DoctorTest, LoadRejectsWrongSchema) {
  EXPECT_FALSE(AnalyzeLoadJson(R"({"schema": "skymr-bench-v1"})").ok());
  EXPECT_FALSE(AnalyzeLoadJson("[]").ok());
  EXPECT_FALSE(AnalyzeLoadJson("nope").ok());
}

TEST(DoctorTest, HealthyLoadIsClean) {
  // Tail near the median, negligible queue wait, nothing dropped.
  const auto findings = AnalyzeLoadDoc(Load(100, 2000.0, 8000.0, 500.0));
  EXPECT_TRUE(findings.empty()) << RenderFindings(findings);
}

TEST(DoctorTest, FlagsQueueingDelay) {
  // 60% of the 50ms latency tail is queue wait.
  const auto findings = AnalyzeLoadDoc(Load(100, 4000.0, 50000.0, 30000.0));
  ASSERT_TRUE(HasCode(findings, "queueing-delay")) << RenderFindings(findings);
  for (const Finding& finding : findings) {
    if (finding.code == "queueing-delay") {
      EXPECT_EQ(finding.severity, Severity::kWarning);
    }
  }
}

TEST(DoctorTest, SaturatedQueueEscalatesToCritical) {
  // 96% of the tail is queue wait: the system is purely queueing.
  const auto findings = AnalyzeLoadDoc(Load(100, 4000.0, 50000.0, 48000.0));
  ASSERT_TRUE(HasCode(findings, "queueing-delay")) << RenderFindings(findings);
  EXPECT_EQ(findings[0].code, "queueing-delay");
  EXPECT_EQ(findings[0].severity, Severity::kCritical);
}

TEST(DoctorTest, FlagsTailAmplification) {
  // p99 is 40x p50 with a quiet queue-wait signal below its own floor.
  const auto findings = AnalyzeLoadDoc(Load(100, 1000.0, 40000.0, 100.0));
  ASSERT_TRUE(HasCode(findings, "tail-amplification"))
      << RenderFindings(findings);
  EXPECT_FALSE(HasCode(findings, "queueing-delay"));
}

TEST(DoctorTest, FewQueriesNeverTripLoadChecks) {
  // Same pathological shape, but 8 queries: percentiles are noise.
  const auto findings = AnalyzeLoadDoc(Load(8, 1000.0, 80000.0, 60000.0));
  EXPECT_TRUE(findings.empty()) << RenderFindings(findings);
}

TEST(DoctorTest, FlagsLogDropFromLoadCounters) {
  const auto findings =
      AnalyzeLoadDoc(Load(100, 2000.0, 8000.0, 500.0, /*log_dropped=*/7));
  ASSERT_TRUE(HasCode(findings, "log-drop")) << RenderFindings(findings);
}

/// A healthy-latency serve-mode document whose session cache resolved
/// `hits` of `hits + misses` bitstring lookups.
std::string ServeLoad(int64_t hits, int64_t misses) {
  const int64_t queries = hits + misses;
  std::ostringstream os;
  os << R"({"schema": "skymr-load-v1", "bench": "loadgen", "load": {)"
     << R"("latency": {"count": )" << queries
     << R"(, "p50_us": 2000.0, "p95_us": 8000.0, "p99_us": 8000.0)"
     << R"(, "max_us": 8000.0, "mean_us": 2000.0}, )"
     << R"("queue_wait": {"count": )" << queries
     << R"(, "p50_us": 1.0, "p95_us": 500.0, "p99_us": 500.0)"
     << R"(, "max_us": 500.0, "mean_us": 1.0}, )"
     << R"("counters": {"completed": )" << queries
     << R"(, "errors": 0, "deadline_missed": 0, "log_dropped": 0)"
     << R"(, "session_cache_hits": )" << hits
     << R"(, "session_cache_misses": )" << misses
     << R"(, "bitstring_jobs": )" << misses << "}}}";
  return os.str();
}

TEST(DoctorTest, FlagsColdSessionCache) {
  // 90 of 100 lookups rebuilt the bitstring phase: the cache is cold.
  const auto findings = AnalyzeLoadDoc(ServeLoad(10, 90));
  ASSERT_TRUE(HasCode(findings, "session-cache-cold"))
      << RenderFindings(findings);
  for (const Finding& finding : findings) {
    if (finding.code == "session-cache-cold") {
      EXPECT_EQ(finding.severity, Severity::kWarning);
    }
  }
}

TEST(DoctorTest, WarmSessionCacheIsClean) {
  const auto findings = AnalyzeLoadDoc(ServeLoad(95, 5));
  EXPECT_FALSE(HasCode(findings, "session-cache-cold"))
      << RenderFindings(findings);
}

TEST(DoctorTest, BatchArtifactWithoutSessionCountersStaysSilent) {
  // The batch harness writes no session counters at all; their absence
  // must read as "not a serve run", never as a 0% hit rate.
  const auto findings = AnalyzeLoadDoc(Load(100, 2000.0, 8000.0, 500.0));
  EXPECT_FALSE(HasCode(findings, "session-cache-cold"))
      << RenderFindings(findings);
}

TEST(DoctorTest, FewLookupsNeverTripSessionCacheCheck) {
  // 2 misses on a 2-query run is a cold start, not a pathology.
  const auto findings = AnalyzeLoadDoc(ServeLoad(0, 2));
  EXPECT_FALSE(HasCode(findings, "session-cache-cold"))
      << RenderFindings(findings);
}

TEST(DoctorTest, FlagsLogDropFromMetricsSnapshot) {
  const std::string json =
      R"({"schema": "skymr-metrics-v1", "uptime_seconds": 1.0,)"
      R"( "gauges": {}, "sketches": {},)"
      R"( "counters": {"mr.log_dropped": {"value": 3, "rate_per_s": 3.0}}})";
  auto findings = AnalyzeMetricsJson(json);
  ASSERT_TRUE(findings.ok()) << findings.status();
  EXPECT_TRUE(HasCode(*findings, "log-drop")) << RenderFindings(*findings);
}

// ---------------------------------------------------------------------
// End to end: the doctor over reports this repo itself writes.
// ---------------------------------------------------------------------

std::string ReportForRun(const RunnerConfig& config, size_t cardinality,
                         size_t dim) {
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kIndependent;
  gen.cardinality = cardinality;
  gen.dim = dim;
  gen.seed = 99;
  const Dataset data = std::move(data::Generate(gen)).value();
  auto result = ComputeSkyline(data, config);
  EXPECT_TRUE(result.ok()) << result.status();
  std::ostringstream os;
  WriteJobReport(*result, os);
  return os.str();
}

TEST(DoctorTest, HealthyRunProducesNoFindings) {
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.engine.num_map_tasks = 4;
  config.engine.num_reducers = 2;
  const auto findings = Analyze(ReportForRun(config, 4000, 3));
  EXPECT_TRUE(findings.empty()) << RenderFindings(findings);
}

TEST(DoctorTest, ForcedCoarsePpdIsDiagnosed) {
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.engine.num_map_tasks = 4;
  config.engine.num_reducers = 2;
  config.ppd.explicit_ppd = 2;  // Far below the Section 3.3 candidate max.
  const auto findings = Analyze(ReportForRun(config, 20000, 4));
  EXPECT_TRUE(HasCode(findings, "ppd-coarse")) << RenderFindings(findings);
}

}  // namespace
}  // namespace skymr::obs
