#include "src/obs/histogram.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace skymr::obs {
namespace {

TEST(HistogramTest, StartsEmpty) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
}

TEST(HistogramTest, BucketIndexPowersOfTwo) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(hi), i) << "bucket " << i;
  }
}

TEST(HistogramTest, SingleValueStatsAreExact) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.Mean(), 42.0);
  // The percentile is clamped into [min, max], so one value is exact at
  // every percentile.
  EXPECT_EQ(h.Percentile(0.0), 42.0);
  EXPECT_EQ(h.Percentile(50.0), 42.0);
  EXPECT_EQ(h.Percentile(100.0), 42.0);
}

TEST(HistogramTest, ZeroesLandInBucketZero) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(99.0), 0.0);
}

TEST(HistogramTest, PercentilesAreMonotoneAndClamped) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Add(v);
  }
  double prev = h.Percentile(0.0);
  EXPECT_GE(prev, static_cast<double>(h.min()));
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
  EXPECT_LE(prev, static_cast<double>(h.max()));
  // The p50 of 1..1000 must land within one bucket width of 500: the
  // containing bucket is [512, 1023] and interpolation starts at the
  // previous bucket's end, so accept the bucket below too.
  const double p50 = h.Percentile(50.0);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
}

TEST(HistogramTest, MergeEqualsAddingEverything) {
  std::vector<uint64_t> values_a = {0, 1, 5, 17, 1000, 123456};
  std::vector<uint64_t> values_b = {3, 3, 3, 8, 1 << 20};
  Histogram a;
  Histogram b;
  Histogram all;
  for (const uint64_t v : values_a) {
    a.Add(v);
    all.Add(v);
  }
  for (const uint64_t v : values_b) {
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a, all);
  EXPECT_EQ(a.count(), values_a.size() + values_b.size());
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), static_cast<uint64_t>(1 << 20));
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Add(9);
  Histogram before = a;
  a.Merge(Histogram());
  EXPECT_EQ(a, before);
  Histogram empty;
  empty.Merge(a);
  EXPECT_EQ(empty, a);
}

TEST(HistogramTest, ToStringMentionsTheStats) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos) << s;
  EXPECT_NE(s.find("sum=30"), std::string::npos) << s;
  EXPECT_NE(s.find("min=10"), std::string::npos) << s;
  EXPECT_NE(s.find("max=20"), std::string::npos) << s;
}

TEST(HistogramSetTest, AddCreatesAndAccumulates) {
  HistogramSet set;
  EXPECT_TRUE(set.empty());
  set.Add("a", 1);
  set.Add("a", 2);
  set.Add("b", 7);
  EXPECT_EQ(set.size(), 2u);
  ASSERT_NE(set.Find("a"), nullptr);
  EXPECT_EQ(set.Find("a")->count(), 2u);
  EXPECT_EQ(set.Find("a")->sum(), 3u);
  EXPECT_EQ(set.Find("missing"), nullptr);
}

TEST(HistogramSetTest, MergeIsPerName) {
  HistogramSet a;
  a.Add("x", 1);
  a.Add("y", 2);
  HistogramSet b;
  b.Add("y", 5);
  b.Add("z", 7);
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Find("y")->count(), 2u);
  EXPECT_EQ(a.Find("y")->sum(), 7u);
  EXPECT_EQ(a.Find("z")->sum(), 7u);
}

TEST(HistogramSetTest, DeterministicIterationOrder) {
  HistogramSet set;
  set.Add("zeta", 1);
  set.Add("alpha", 1);
  set.Add("mid", 1);
  std::vector<std::string> names;
  for (const auto& [name, histogram] : set.entries()) {
    (void)histogram;
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace skymr::obs
