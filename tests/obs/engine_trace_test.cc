// End-to-end tracing of a chained two-job run: the grid pipeline executes
// the bitstring-generation job and then the skyline job, and the trace
// must show that structure — one pipeline span containing both job spans,
// each job span containing its waves, each wave containing its tasks.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/obs/trace.h"

namespace skymr::obs {
namespace {

std::vector<TraceEventView> ByName(const std::vector<TraceEventView>& events,
                                   const std::string& name) {
  std::vector<TraceEventView> out;
  for (const TraceEventView& e : events) {
    if (e.name == name) {
      out.push_back(e);
    }
  }
  return out;
}

/// True when `inner` lies within `outer` in time. Spans on one thread are
/// strictly nested by construction; across threads a worker's task span
/// completes before the wave barrier releases the enclosing span, so
/// containment holds on the shared clock (with a rounding allowance).
bool ContainedIn(const TraceEventView& inner, const TraceEventView& outer) {
  constexpr double kSlackUs = 1.0;
  return inner.ts_us >= outer.ts_us - kSlackUs &&
         inner.ts_us + inner.dur_us <=
             outer.ts_us + outer.dur_us + kSlackUs;
}

TEST(EngineTraceTest, ChainedJobsNestUnderThePipelineSpan) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kAntiCorrelated;
  gen.cardinality = 800;
  gen.dim = 3;
  gen.seed = 99;
  const Dataset data = std::move(data::Generate(gen)).value();

  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 2;
  config.ppd.max_candidate = 8;

  StopTracing();
  ClearTrace();
  StartTracing();
  auto result = ComputeSkyline(data, config);
  StopTracing();
  ASSERT_TRUE(result.ok()) << result.status();
  const std::vector<TraceEventView> events = SnapshotTrace();
  ClearTrace();

  // Exactly one pipeline span, at depth 0 on its thread.
  const auto pipelines = ByName(events, "skyline.pipeline");
  ASSERT_EQ(pipelines.size(), 1u);
  const TraceEventView& pipeline = pipelines[0];
  EXPECT_EQ(pipeline.depth, 0u);

  // Both chained jobs appear, nested one level under the pipeline on the
  // same thread, and contained in it in time — bitstring first.
  const auto bitstring_jobs = ByName(events, "job.bitstring-generation");
  const auto skyline_jobs = ByName(events, "job.mr-gpmrs");
  ASSERT_EQ(bitstring_jobs.size(), 1u);
  ASSERT_EQ(skyline_jobs.size(), 1u);
  for (const TraceEventView* job : {&bitstring_jobs[0], &skyline_jobs[0]}) {
    EXPECT_EQ(job->tid, pipeline.tid);
    EXPECT_EQ(job->depth, 1u);
    EXPECT_TRUE(ContainedIn(*job, pipeline));
  }
  EXPECT_LE(bitstring_jobs[0].ts_us + bitstring_jobs[0].dur_us,
            skyline_jobs[0].ts_us + 1.0);

  // Each job drives one map wave and one reduce wave, nested at depth 2
  // under its job span.
  const auto map_waves = ByName(events, "map.wave");
  const auto reduce_waves = ByName(events, "reduce.wave");
  ASSERT_EQ(map_waves.size(), 2u);
  ASSERT_EQ(reduce_waves.size(), 2u);
  for (const auto& waves : {map_waves, reduce_waves}) {
    for (const TraceEventView& wave : waves) {
      EXPECT_EQ(wave.tid, pipeline.tid);
      EXPECT_EQ(wave.depth, 2u);
      EXPECT_TRUE(ContainedIn(wave, pipeline));
      EXPECT_TRUE(ContainedIn(wave, bitstring_jobs[0]) ||
                  ContainedIn(wave, skyline_jobs[0]));
    }
  }

  // Task spans may run on worker threads (so depth restarts there), but
  // every one completes inside some job span.
  const auto map_tasks = ByName(events, "map.task");
  const auto reduce_tasks = ByName(events, "reduce.task");
  EXPECT_EQ(map_tasks.size(), 6u);  // 3 per job.
  EXPECT_EQ(reduce_tasks.size(), 3u);  // 1 (bitstring) + 2 (gpmrs).
  for (const auto& tasks : {map_tasks, reduce_tasks}) {
    for (const TraceEventView& task : tasks) {
      EXPECT_TRUE(ContainedIn(task, bitstring_jobs[0]) ||
                  ContainedIn(task, skyline_jobs[0]))
          << task.name << " at ts " << task.ts_us;
    }
  }

  // The paper-phase spans fired: PPD selection and pruning inside the
  // bitstring job, group assignment and merging inside the GPMRS job.
  EXPECT_EQ(ByName(events, "ppd.select").size(), 1u);
  EXPECT_EQ(ByName(events, "bitstring.prune").size(), 1u);
  EXPECT_GE(ByName(events, "gpmrs.group_assign").size(), 3u);  // Per mapper.
  EXPECT_GE(ByName(events, "gpmrs.merge").size(), 1u);
  EXPECT_GE(ByName(events, "core.compare_partitions").size(), 1u);
  EXPECT_EQ(ByName(events, "shuffle.bucket").size(), 3u);
  EXPECT_EQ(ByName(events, "shuffle.sort").size(), 3u);

  // Every map/shuffle/reduce span carries its task/reducer arg.
  for (const TraceEventView& task : map_tasks) {
    ASSERT_FALSE(task.args.empty());
    EXPECT_EQ(task.args[0].first, "task");
  }
}

TEST(EngineTraceTest, GpsrsMergeSpanAppearsForSingleReducerRun) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  data::GeneratorConfig gen;
  gen.cardinality = 400;
  gen.dim = 3;
  gen.seed = 5;
  const Dataset data = std::move(data::Generate(gen)).value();
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpsrs;
  config.engine.num_map_tasks = 2;
  config.ppd.max_candidate = 8;

  StopTracing();
  ClearTrace();
  StartTracing();
  auto result = ComputeSkyline(data, config);
  StopTracing();
  ASSERT_TRUE(result.ok()) << result.status();
  const std::vector<TraceEventView> events = SnapshotTrace();
  ClearTrace();

  EXPECT_EQ(ByName(events, "job.mr-gpsrs").size(), 1u);
  EXPECT_GE(ByName(events, "gpsrs.merge").size(), 1u);
}

}  // namespace
}  // namespace skymr::obs
