#include "src/obs/critical_path.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/mapreduce/task_metrics.h"
#include "src/obs/trace.h"

namespace skymr::obs {
namespace {

// ---------------------------------------------------------------------
// LongestPath golden tests over hand-built DAGs.
// ---------------------------------------------------------------------

DagNode Node(uint64_t id, std::string name, std::string phase, double weight,
             std::vector<uint64_t> deps) {
  DagNode n;
  n.id = id;
  n.name = std::move(name);
  n.phase = std::move(phase);
  n.weight = weight;
  n.deps = std::move(deps);
  return n;
}

/// The golden diamond: a(2) -> {b(3), c(5)} -> d(4). Longest path is
/// a,c,d with length 11; b carries 2 units of slack.
std::vector<DagNode> Diamond() {
  return {Node(1, "a", "load", 2.0, {}),
          Node(2, "b", "work", 3.0, {1}),
          Node(3, "c", "work", 5.0, {1}),
          Node(4, "d", "save", 4.0, {2, 3})};
}

TEST(LongestPathTest, DiamondGolden) {
  auto path = LongestPath(Diamond());
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_DOUBLE_EQ(path->length, 11.0);
  EXPECT_EQ(path->nodes, (std::vector<uint64_t>{1, 3, 4}));
}

TEST(LongestPathTest, PhaseFreeExposesSlack) {
  // Freeing "work" zeroes b and c but keeps the a -> d dependency chain:
  // the path shrinks to a + d = 6, a 5-second (45%) slack.
  auto freed = LongestPathWithPhaseFree(Diamond(), "work");
  ASSERT_TRUE(freed.ok()) << freed.status();
  EXPECT_DOUBLE_EQ(freed->length, 6.0);
  // Freeing a phase not on the DAG changes nothing.
  auto same = LongestPathWithPhaseFree(Diamond(), "nope");
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(same->length, 11.0);
}

TEST(LongestPathTest, TiesBreakDeterministically) {
  // b and c tie at weight 3: the predecessor choice must take the first
  // strict maximum in d's dependency-list order — b.
  auto path = LongestPath({Node(1, "a", "p", 2.0, {}),
                           Node(2, "b", "p", 3.0, {1}),
                           Node(3, "c", "p", 3.0, {1}),
                           Node(4, "d", "p", 4.0, {2, 3})});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->nodes, (std::vector<uint64_t>{1, 2, 4}));

  // Two equal-length disjoint chains: the path ends at the first sink in
  // input order.
  auto two = LongestPath({Node(1, "x", "p", 5.0, {}),
                          Node(2, "y", "p", 5.0, {})});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->nodes, (std::vector<uint64_t>{1}));
}

TEST(LongestPathTest, EmptyDagIsEmptyPath) {
  auto path = LongestPath({});
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->length, 0.0);
  EXPECT_TRUE(path->nodes.empty());
}

TEST(LongestPathTest, RejectsMalformedDags) {
  // Zero id.
  EXPECT_FALSE(LongestPath({Node(0, "z", "p", 1.0, {})}).ok());
  // Duplicate id.
  EXPECT_FALSE(LongestPath({Node(1, "a", "p", 1.0, {}),
                            Node(1, "b", "p", 1.0, {})})
                   .ok());
  // Unknown dependency.
  EXPECT_FALSE(LongestPath({Node(1, "a", "p", 1.0, {99})}).ok());
  // Cycle.
  EXPECT_FALSE(LongestPath({Node(1, "a", "p", 1.0, {2}),
                            Node(2, "b", "p", 1.0, {1})})
                   .ok());
}

// ---------------------------------------------------------------------
// AnalyzeCriticalPath over synthetic job metrics.
// ---------------------------------------------------------------------

mr::TaskMetrics Task(double busy, uint64_t in, uint64_t out,
                     double shuffle = 0.0, int attempts = 1) {
  mr::TaskMetrics t;
  t.busy_seconds = busy;
  t.input_records = in;
  t.output_records = out;
  t.shuffle_seconds = shuffle;
  t.attempts = attempts;
  return t;
}

/// Two chained jobs with hand-picked weights. Wall critical path:
///   j0.map1 (3.0) -> j0.shf0 (0.5) -> j0.red0 (2.0)
///   -> j1.map1 (2.0) -> j1.shf1 (1.0) -> j1.red1 (0.5)
/// makespan 9.0s. The deterministic (record-count) path takes the same
/// route because the record weights rank the same way.
std::vector<mr::JobMetrics> TwoJobPipeline() {
  mr::JobMetrics bitstring;
  bitstring.name = "bitstring-generation";
  bitstring.map_tasks = {Task(1.0, 10, 5), Task(3.0, 100, 50)};
  bitstring.reduce_tasks = {Task(2.0, 55, 20, /*shuffle=*/0.5)};

  mr::JobMetrics skyline;
  skyline.name = "mr-gpmrs";
  skyline.map_tasks = {Task(1.0, 20, 10), Task(2.0, 200, 100)};
  skyline.reduce_tasks = {Task(1.0, 30, 5, /*shuffle=*/0.25),
                          Task(0.5, 300, 10, /*shuffle=*/1.0)};
  return {bitstring, skyline};
}

TEST(AnalyzeCriticalPathTest, AttributesPhasesSummingToMakespan) {
  const CriticalPathReport report = AnalyzeCriticalPath(TwoJobPipeline());
  ASSERT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.makespan_seconds, 9.0);

  // The path walks both jobs' map -> shuffle -> reduce chains.
  ASSERT_EQ(report.steps.size(), 6u);
  const std::vector<std::string> kinds = {"map",    "shuffle", "reduce",
                                          "map",    "shuffle", "reduce"};
  const std::vector<int> tasks = {1, 0, 0, 1, 1, 1};
  for (size_t i = 0; i < report.steps.size(); ++i) {
    EXPECT_EQ(report.steps[i].kind, kinds[i]) << "step " << i;
    EXPECT_EQ(report.steps[i].task, tasks[i]) << "step " << i;
  }
  EXPECT_EQ(report.steps[0].job, "bitstring-generation");
  EXPECT_EQ(report.steps[5].job, "mr-gpmrs");

  // Paper-phase mapping, in first-appearance order, summing to 100%.
  ASSERT_EQ(report.phases.size(), 5u);
  EXPECT_EQ(report.phases[0].phase, "ppd.select");
  EXPECT_EQ(report.phases[1].phase, "shuffle");
  EXPECT_EQ(report.phases[2].phase, "bitstring.prune");
  EXPECT_EQ(report.phases[3].phase, "local-skyline");
  EXPECT_EQ(report.phases[4].phase, "merge");
  EXPECT_DOUBLE_EQ(report.phases[0].seconds, 3.0);
  EXPECT_DOUBLE_EQ(report.phases[1].seconds, 1.5);  // 0.5 + 1.0
  EXPECT_DOUBLE_EQ(report.phases[2].seconds, 2.0);
  EXPECT_DOUBLE_EQ(report.phases[3].seconds, 2.0);
  EXPECT_DOUBLE_EQ(report.phases[4].seconds, 0.5);
  double percent_sum = 0.0;
  for (const CpPhase& p : report.phases) {
    percent_sum += p.percent;
  }
  EXPECT_NEAR(percent_sum, 100.0, 1e-9);

  // What-if: shuffle free drops j0 to 5.0 and j1 to 3.0 -> makespan 8.0,
  // an 11.1% reduction (j1's path re-routes through reducer 0).
  EXPECT_NEAR(report.phases[1].what_if_free_percent, 100.0 * 1.0 / 9.0,
              1e-9);

  EXPECT_EQ(report.dag_signature,
            "jobs=2;j0=bitstring-generation:m2:r1;j1=mr-gpmrs:m2:r2;"
            "det=j0.map1>j0.shf0>j0.red0>j1.map1>j1.shf1>j1.red1");

  // Deterministic attribution covers the same phases and sums to 100%.
  ASSERT_EQ(report.deterministic_phases.size(), 5u);
  double det_sum = 0.0;
  for (const CpDeterministicPhase& p : report.deterministic_phases) {
    det_sum += p.percent;
  }
  EXPECT_NEAR(det_sum, 100.0, 1e-9);
}

TEST(AnalyzeCriticalPathTest, IsDeterministicAcrossCalls) {
  const CriticalPathReport a = AnalyzeCriticalPath(TwoJobPipeline());
  const CriticalPathReport b = AnalyzeCriticalPath(TwoJobPipeline());
  EXPECT_EQ(a.dag_signature, b.dag_signature);
  ASSERT_EQ(a.deterministic_phases.size(), b.deterministic_phases.size());
  for (size_t i = 0; i < a.deterministic_phases.size(); ++i) {
    EXPECT_EQ(a.deterministic_phases[i].phase,
              b.deterministic_phases[i].phase);
    EXPECT_EQ(a.deterministic_phases[i].records,
              b.deterministic_phases[i].records);
  }
}

TEST(AnalyzeCriticalPathTest, EmptyPipelineIsInvalid) {
  EXPECT_FALSE(AnalyzeCriticalPath({}).valid);
  mr::JobMetrics empty_job;
  empty_job.name = "empty";
  EXPECT_FALSE(AnalyzeCriticalPath({empty_job}).valid);
}

TEST(AnalyzeCriticalPathTest, RendersAttributionTable) {
  const std::string text = RenderCriticalPathText(
      AnalyzeCriticalPath(TwoJobPipeline()));
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("ppd.select"), std::string::npos);
  EXPECT_NE(text.find("if free"), std::string::npos);
  EXPECT_NE(text.find("dag"), std::string::npos);
  // The invalid report renders a placeholder, not garbage.
  EXPECT_NE(RenderCriticalPathText(AnalyzeCriticalPath({}))
                .find("no jobs"),
            std::string::npos);
}

TEST(AnalyzeCriticalPathTest, RetriedTaskAttemptsSurfaceOnSteps) {
  // A retried map straggler: the critical path must carry its attempt
  // count so the doctor's straggler check can see the scar.
  std::vector<mr::JobMetrics> jobs(1);
  jobs[0].name = "mr-gpsrs";
  jobs[0].map_tasks = {Task(0.1, 10, 5),
                       Task(2.0, 10, 5, 0.0, /*attempts=*/3)};
  jobs[0].reduce_tasks = {Task(0.2, 10, 5, 0.05)};
  const CriticalPathReport report = AnalyzeCriticalPath(jobs);
  ASSERT_TRUE(report.valid);
  ASSERT_GE(report.steps.size(), 1u);
  EXPECT_EQ(report.steps[0].kind, "map");
  EXPECT_EQ(report.steps[0].task, 1);
  EXPECT_EQ(report.steps[0].attempts, 3);
}

// ---------------------------------------------------------------------
// Span-DAG reconstruction from traces.
// ---------------------------------------------------------------------

TEST(SpanDagTest, TracedRunYieldsCommittedSpanDag) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kAntiCorrelated;
  gen.cardinality = 600;
  gen.dim = 3;
  gen.seed = 7;
  const Dataset data = std::move(data::Generate(gen)).value();
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 2;
  config.ppd.max_candidate = 8;

  StopTracing();
  ClearTrace();
  StartTracing();
  auto result = ComputeSkyline(data, config);
  StopTracing();
  ASSERT_TRUE(result.ok()) << result.status();
  const std::vector<TraceEventView> events = SnapshotTrace();
  ClearTrace();

  const SpanDag dag = BuildSpanDag(events);
  EXPECT_EQ(dag.dropped_attempts, 0u);  // No chaos: every attempt wins.
  ASSERT_FALSE(dag.nodes.empty());

  // Ids are unique, sorted, and every parent/link resolves in-DAG.
  std::set<uint64_t> ids;
  for (const SpanDagNode& node : dag.nodes) {
    EXPECT_NE(node.id, 0u);
    EXPECT_TRUE(ids.insert(node.id).second) << "duplicate id " << node.id;
  }
  size_t task_spans = 0;
  size_t shuffle_links = 0;
  for (const SpanDagNode& node : dag.nodes) {
    if (node.parent_id != 0) {
      EXPECT_TRUE(ids.count(node.parent_id) > 0)
          << node.name << " has dangling parent " << node.parent_id;
    }
    if (node.link_id != 0) {
      ++shuffle_links;
      EXPECT_TRUE(ids.count(node.link_id) > 0)
          << node.name << " has dangling link " << node.link_id;
    }
    if (node.name == "map.task" || node.name == "reduce.task") {
      ++task_spans;
      EXPECT_NE(node.parent_id, 0u) << "task span without a wave parent";
    }
  }
  EXPECT_EQ(task_spans, 9u);      // (3 maps + 1 red) + (3 maps + 2 red).
  EXPECT_GE(shuffle_links, 3u);   // Every shuffle.bucket links its maps.
}

TEST(SpanDagTest, LosingAttemptsNeverEnterTheDag) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kIndependent;
  gen.cardinality = 800;
  gen.dim = 3;

  // Shuffle corruption fails a reduce attempt mid-body — after its span
  // opened — so the trace contains the losing attempt and BuildSpanDag
  // must drop it. The injection is a seed-keyed hash; sweep seeds until
  // a run both finishes and saw at least one corrupted attempt.
  bool exercised = false;
  for (uint64_t seed = 1; seed <= 20 && !exercised; ++seed) {
    gen.seed = seed;
    const Dataset data = std::move(data::Generate(gen)).value();
    RunnerConfig config;
    config.algorithm = Algorithm::kMrGpmrs;
    config.engine.num_map_tasks = 3;
    config.engine.num_reducers = 3;
    config.ppd.max_candidate = 8;
    config.engine.chaos.seed = seed;
    config.engine.chaos.corrupt_rate = 0.5;

    StopTracing();
    ClearTrace();
    StartTracing();
    auto result = ComputeSkyline(data, config);
    StopTracing();
    if (!result.ok()) {
      continue;  // All attempts of some task corrupted; try another seed.
    }
    const std::vector<TraceEventView> events = SnapshotTrace();
    ClearTrace();

    const SpanDag dag = BuildSpanDag(events);
    if (dag.dropped_attempts == 0) {
      continue;  // This seed corrupted nothing; try another.
    }
    exercised = true;

    // Independently recompute the committed span ids and check the DAG
    // kept exactly those task spans.
    std::set<uint64_t> committed;
    for (const TraceEventView& e : events) {
      if (e.phase == 'i' && e.name == "task.commit") {
        committed.insert(e.parent_id);
      }
    }
    for (const SpanDagNode& node : dag.nodes) {
      if (node.name == "map.task" || node.name == "reduce.task") {
        EXPECT_TRUE(committed.count(node.id) > 0)
            << "uncommitted attempt " << node.id << " entered the DAG";
      }
    }
    // And the losing attempts exist in the raw trace but not in the DAG.
    std::set<uint64_t> dag_ids;
    for (const SpanDagNode& node : dag.nodes) {
      dag_ids.insert(node.id);
    }
    size_t losing = 0;
    for (const TraceEventView& e : events) {
      if (e.phase == 'X' &&
          (e.name == "map.task" || e.name == "reduce.task") &&
          committed.count(e.id) == 0) {
        ++losing;
        EXPECT_EQ(dag_ids.count(e.id), 0u)
            << "losing attempt " << e.id << " entered the DAG";
      }
    }
    EXPECT_EQ(losing, dag.dropped_attempts);
  }
  EXPECT_TRUE(exercised)
      << "no seed in 1..20 produced a finished run with a corrupted "
         "attempt; loosen the sweep";
}

TEST(SpanDagTest, SameSeedRunsProduceIdenticalDagShape) {
  if (!TracingCompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  data::GeneratorConfig gen;
  gen.cardinality = 500;
  gen.dim = 3;
  gen.seed = 11;
  const Dataset data = std::move(data::Generate(gen)).value();
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 2;
  config.ppd.max_candidate = 8;

  const auto shape = [&]() {
    StopTracing();
    ClearTrace();
    StartTracing();
    auto result = ComputeSkyline(data, config);
    StopTracing();
    EXPECT_TRUE(result.ok()) << result.status();
    const SpanDag dag = BuildSpanDag(SnapshotTrace());
    ClearTrace();
    // Name plus parent/link names: thread scheduling may reorder span-id
    // assignment, but the shape (who nests under whom) is seed-stable.
    std::multiset<std::string> out;
    std::map<uint64_t, std::string> names;
    for (const SpanDagNode& node : dag.nodes) {
      names[node.id] = node.name;
    }
    for (const SpanDagNode& node : dag.nodes) {
      out.insert(node.name + "<" + names[node.parent_id] + "|" +
                 names[node.link_id]);
    }
    return out;
  };
  EXPECT_EQ(shape(), shape());
}

}  // namespace
}  // namespace skymr::obs
