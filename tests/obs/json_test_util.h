// Minimal recursive-descent JSON validator for the observability tests:
// enough to assert that exported trace and report documents are
// well-formed JSON, without pulling a parser dependency into the build.

#ifndef SKYMR_TESTS_OBS_JSON_TEST_UTIL_H_
#define SKYMR_TESTS_OBS_JSON_TEST_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>

namespace skymr::obs::testing {
namespace json_internal {

class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  /// Empty string when `text_` is one valid JSON value; else a diagnostic.
  std::string Run() {
    SkipWs();
    Value();
    SkipWs();
    if (error_.empty() && pos_ != text_.size()) {
      Fail("trailing data");
    }
    return error_;
  }

 private:
  void Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  void SkipWs() {
    while (!AtEnd() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                        text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  void Expect(char c) {
    if (!Consume(c)) {
      Fail(std::string("expected '") + c + "'");
    }
  }

  void Value() {
    if (!error_.empty()) {
      return;
    }
    switch (Peek()) {
      case '{':
        Object();
        return;
      case '[':
        Array();
        return;
      case '"':
        String();
        return;
      case 't':
        Literal("true");
        return;
      case 'f':
        Literal("false");
        return;
      case 'n':
        Literal("null");
        return;
      default:
        Number();
    }
  }

  void Object() {
    Expect('{');
    SkipWs();
    if (Consume('}')) {
      return;
    }
    while (error_.empty()) {
      SkipWs();
      String();
      SkipWs();
      Expect(':');
      SkipWs();
      Value();
      SkipWs();
      if (Consume('}')) {
        return;
      }
      Expect(',');
    }
  }

  void Array() {
    Expect('[');
    SkipWs();
    if (Consume(']')) {
      return;
    }
    while (error_.empty()) {
      SkipWs();
      Value();
      SkipWs();
      if (Consume(']')) {
        return;
      }
      Expect(',');
    }
  }

  void String() {
    Expect('"');
    while (error_.empty()) {
      if (AtEnd()) {
        Fail("unterminated string");
        return;
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
        return;
      }
      if (c == '\\') {
        if (AtEnd()) {
          Fail("dangling escape");
          return;
        }
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || std::isxdigit(static_cast<unsigned char>(
                               text_[pos_])) == 0) {
              Fail("bad \\u escape");
              return;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          Fail("bad escape");
          return;
        }
      }
    }
  }

  void Number() {
    const size_t begin = pos_;
    Consume('-');
    while (!AtEnd() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) != 0 ||
            Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
            Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == begin) {
      Fail("expected a value");
    }
  }

  void Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("bad literal");
      return;
    }
    pos_ += word.size();
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace json_internal

/// Empty string when `text` is one valid JSON document; else a diagnostic.
inline std::string JsonParseError(std::string_view text) {
  return json_internal::Validator(text).Run();
}

}  // namespace skymr::obs::testing

#endif  // SKYMR_TESTS_OBS_JSON_TEST_UTIL_H_
