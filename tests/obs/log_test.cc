#include "src/obs/log.h"

#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/json_parse.h"
#include "src/obs/metrics.h"

namespace skymr::obs {
namespace {

LogRecord MakeRecord(uint64_t query_id = 7) {
  LogRecord record;
  record.ts_us = 1234.5;
  record.severity = LogSeverity::kWarn;
  record.query_id = query_id;
  record.task = 3;
  record.attempt = 2;
  std::strcpy(record.event, "task.retry");
  std::strcpy(record.job, "mr-gpmrs");
  std::strcpy(record.tag, "size=small");
  std::strcpy(record.message, "crash injected");
  return record;
}

TEST(LogSeverityTest, NamesRoundTrip) {
  for (const LogSeverity severity :
       {LogSeverity::kDebug, LogSeverity::kInfo, LogSeverity::kWarn,
        LogSeverity::kError, LogSeverity::kFatal}) {
    auto parsed = ParseLogSeverity(LogSeverityName(severity));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), severity);
  }
  EXPECT_FALSE(ParseLogSeverity("loud").ok());
  EXPECT_FALSE(ParseLogSeverity("").ok());
}

TEST(LogLineTest, FormatIsOneJsonObject) {
  const std::string line = FormatLogLine(MakeRecord());
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->is_object());
  EXPECT_EQ(doc->GetString("sev", ""), "warn");
  EXPECT_EQ(doc->GetString("event", ""), "task.retry");
  EXPECT_EQ(doc->GetInt("query", 0), 7);
  EXPECT_EQ(doc->GetInt("task", -1), 3);
  EXPECT_EQ(doc->GetInt("attempt", 0), 2);
}

TEST(LogLineTest, AbsentFieldsAreOmitted) {
  LogRecord record;
  record.severity = LogSeverity::kInfo;
  std::strcpy(record.event, "job.start");
  const std::string line = FormatLogLine(record);
  EXPECT_EQ(line.find("query"), std::string::npos);
  EXPECT_EQ(line.find("task"), std::string::npos);
  EXPECT_EQ(line.find("attempt"), std::string::npos);
  EXPECT_EQ(line.find("msg"), std::string::npos);
  EXPECT_EQ(line.find("tag"), std::string::npos);
  EXPECT_EQ(line.find("job\""), std::string::npos);
}

TEST(LogLineTest, ParseFormatIsFixpoint) {
  std::vector<LogRecord> records;
  records.push_back(MakeRecord());
  records.push_back(LogRecord{});
  LogRecord escaped;
  escaped.severity = LogSeverity::kError;
  std::strcpy(escaped.event, "weird\"chars");
  std::strcpy(escaped.message, "line\nbreak\tand \\ quote \"x\"");
  records.push_back(escaped);
  LogRecord big_id;
  big_id.severity = LogSeverity::kDebug;
  std::strcpy(big_id.event, "q");
  big_id.query_id = (uint64_t{1} << 53) - 1;  // largest exact JSON int
  records.push_back(big_id);
  for (const LogRecord& record : records) {
    const std::string line = FormatLogLine(record);
    auto parsed = ParseLogLine(line);
    ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.status();
    EXPECT_EQ(FormatLogLine(parsed.value()), line) << line;
  }
}

TEST(LogLineTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseLogLine("").ok());
  EXPECT_FALSE(ParseLogLine("not json").ok());
  EXPECT_FALSE(ParseLogLine("[1,2]").ok());
  EXPECT_FALSE(ParseLogLine(R"({"event":"x"})").ok());  // no sev
  EXPECT_FALSE(ParseLogLine(R"({"sev":"loud","event":"x"})").ok());
  EXPECT_FALSE(ParseLogLine(R"({"sev":7,"event":"x"})").ok());
}

TEST(LogLineTest, ParseTruncatesOversizedStrings) {
  const std::string long_event(200, 'e');
  const std::string line =
      R"({"sev":"info","event":")" + long_event + R"("})";
  auto parsed = ParseLogLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::string(parsed->event),
            long_event.substr(0, LogRecord::kEventCapacity - 1));
}

TEST(LoggerTest, SinkSeesRecordsAtOrAboveMinSeverity) {
  std::ostringstream out;
  StreamLogSink sink(out);
  Logger::Options options;
  options.min_severity = LogSeverity::kWarn;
  Logger logger(options);
  logger.AddSink(&sink);
  logger.Log(LogSeverity::kInfo, "quiet", "below the sink floor");
  logger.Log(LogSeverity::kWarn, "loud", "at the sink floor");
  const std::string text = out.str();
  EXPECT_EQ(text.find("quiet"), std::string::npos);
  EXPECT_NE(text.find("loud"), std::string::npos);
  // The ring still retains both (ring_min_severity defaults to debug).
  EXPECT_EQ(logger.Snapshot().size(), 2u);
}

TEST(LoggerTest, LogQueryStampsContext) {
  Logger logger;
  QueryContext query;
  query.id = 42;
  query.tag = "size=large";
  logger.LogQuery(LogSeverity::kInfo, query, "query.start", "hello",
                  "bitstring", 5, 1);
  const std::vector<LogRecord> records = logger.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].query_id, 42u);
  EXPECT_STREQ(records[0].tag, "size=large");
  EXPECT_STREQ(records[0].job, "bitstring");
  EXPECT_EQ(records[0].task, 5);
  EXPECT_EQ(records[0].attempt, 1);
}

TEST(LoggerTest, RingRetainsMostRecentRecords) {
  Logger::Options options;
  options.ring_capacity = 8;
  Logger logger(options);
  EXPECT_EQ(logger.ring_capacity(), 8u);
  for (int i = 0; i < 100; ++i) {
    logger.Log(LogSeverity::kInfo, "tick", std::to_string(i));
  }
  const std::vector<LogRecord> records = logger.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Oldest first, and exactly the last 8 events.
  for (int i = 0; i < 8; ++i) {
    EXPECT_STREQ(records[i].message, std::to_string(92 + i).c_str());
  }
  EXPECT_EQ(logger.dropped(), 0);
}

TEST(LoggerTest, TimestampsAreMonotonic) {
  Logger logger;
  for (int i = 0; i < 10; ++i) {
    logger.Log(LogSeverity::kInfo, "tick", "");
  }
  const std::vector<LogRecord> records = logger.Snapshot();
  ASSERT_EQ(records.size(), 10u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].ts_us, records[i - 1].ts_us);
  }
}

TEST(LoggerTest, DropsAreCountedIntoMetrics) {
  MetricsRegistry metrics;
  Logger::Options options;
  options.ring_capacity = 8;
  options.metrics = &metrics;
  Logger logger(options);
  // Hammer the ring from many threads while snapshotting: every record
  // either lands in the ring or is counted as dropped, never torn.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&logger, &go, t]() {
      while (!go.load()) {
      }
      Logger::Fields fields;
      fields.query_id = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < kPerThread; ++i) {
        logger.Log(LogSeverity::kInfo, "stress", "x", fields);
      }
    });
  }
  go.store(true);
  for (int i = 0; i < 50; ++i) {
    const std::vector<LogRecord> snap = logger.Snapshot();
    EXPECT_LE(snap.size(), logger.ring_capacity());
    for (const LogRecord& record : snap) {
      EXPECT_GE(record.query_id, 1u);
      EXPECT_LE(record.query_id, static_cast<uint64_t>(kThreads));
      EXPECT_STREQ(record.event, "stress");
    }
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(logger.dropped(), metrics.counter("mr.log_dropped")->Value());
}

TEST(LoggerTest, DumpFlightRecorderWritesSchemaHeader) {
  Logger logger;
  logger.Log(LogSeverity::kInfo, "a", "1");
  logger.Log(LogSeverity::kError, "b", "2");
  std::ostringstream out;
  ASSERT_TRUE(logger.DumpFlightRecorder(out, "unit-test").ok());
  std::istringstream in(out.str());
  std::string header_line;
  ASSERT_TRUE(std::getline(in, header_line));
  auto header = ParseJson(header_line);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->GetString("schema", ""), kFlightSchemaVersion);
  EXPECT_EQ(header->GetString("reason", ""), "unit-test");
  EXPECT_EQ(header->GetInt("records", -1), 2);
  std::string line;
  int records = 0;
  while (std::getline(in, line)) {
    ASSERT_TRUE(ParseLogLine(line).ok()) << line;
    ++records;
  }
  EXPECT_EQ(records, 2);
}

TEST(LoggerTest, NotifyFatalDumpsOnce) {
  const std::string path =
      testing::TempDir() + "/log_test_flight_dump.jsonl";
  Logger::Options options;
  options.crash_dump_path = path;
  Logger logger(options);
  logger.Log(LogSeverity::kInfo, "before", "the crash");
  EXPECT_FALSE(logger.crash_dumped());
  logger.NotifyFatal("first-failure");
  EXPECT_TRUE(logger.crash_dumped());
  // A second fatal must not overwrite the first dump.
  logger.NotifyFatal("second-failure");
  std::ifstream dump(path);
  ASSERT_TRUE(dump.good());
  std::string header_line;
  ASSERT_TRUE(std::getline(dump, header_line));
  auto header = ParseJson(header_line);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->GetString("reason", ""), "first-failure");
  // The dump contains the pre-crash record and the fatal marker itself.
  std::string line;
  bool saw_before = false;
  bool saw_fatal = false;
  while (std::getline(dump, line)) {
    auto record = ParseLogLine(line);
    ASSERT_TRUE(record.ok());
    saw_before |= std::string(record->event) == "before";
    saw_fatal |= record->severity == LogSeverity::kFatal;
  }
  EXPECT_TRUE(saw_before);
  EXPECT_TRUE(saw_fatal);
}

TEST(LoggerTest, ConcurrentLoggingIsRaceFree) {
  Logger::Options options;
  options.ring_capacity = 64;
  Logger logger(options);
  std::ostringstream out;
  StreamLogSink sink(out);
  logger.AddSink(&sink);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t]() {
      Logger::Fields fields;
      fields.query_id = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < kPerThread; ++i) {
        logger.Log(LogSeverity::kWarn, "parallel", std::to_string(i),
                   fields);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Ring drops never lose sink records: every one of the 1600 records
  // reaches the sink as a whole JSON object (single-insert writes cannot
  // interleave), while the ring keeps at most its last-64 window.
  const std::vector<LogRecord> snap = logger.Snapshot();
  EXPECT_LE(snap.size(), 64u);
  std::istringstream lines(out.str());
  std::string line;
  size_t parsed = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(ParseLogLine(line).ok()) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace skymr::obs
