#include "src/obs/job_report.h"

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/cost/cost_model.h"
#include "src/data/generator.h"
#include "src/mapreduce/job.h"
#include "tests/obs/json_test_util.h"

namespace skymr::obs {
namespace {

SkylineResult SmallGridRun() {
  data::GeneratorConfig gen;
  gen.distribution = data::Distribution::kAntiCorrelated;
  gen.cardinality = 600;
  gen.dim = 3;
  gen.seed = 17;
  const Dataset data = std::move(data::Generate(gen)).value();
  RunnerConfig config;
  config.algorithm = Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 3;
  config.engine.num_reducers = 2;
  config.ppd.max_candidate = 8;
  auto result = ComputeSkyline(data, config);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(JobReportTest, ReportIsValidJsonWithSchemaAndCostModel) {
  const SkylineResult result = SmallGridRun();
  std::ostringstream os;
  WriteJobReport(result, os);
  const std::string json = os.str();

  EXPECT_EQ(testing::JsonParseError(json), "") << json;
  EXPECT_NE(json.find("\"schema\": \"skymr-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"mr-gpmrs\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": ["), std::string::npos);
  // Both chained jobs are reported.
  EXPECT_NE(json.find("\"name\": \"bitstring-generation\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"mr-gpmrs\""), std::string::npos);
  // Engine histograms made it into the report.
  EXPECT_NE(json.find("\"mr.map_task_busy_us\""), std::string::npos);
  EXPECT_NE(json.find("\"mr.shuffle_bucket_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"skymr.reducer_group_cells\""), std::string::npos);
  // A grid run carries the Section 6 cost-model comparison.
  EXPECT_NE(json.find("\"cost_model\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_mapper_comparisons\""), std::string::npos);
  EXPECT_NE(json.find("\"observed_max_reducer_comparisons\""),
            std::string::npos);
}

TEST(JobReportTest, CostModelComparesObservedAgainstPredictions) {
  const SkylineResult result = SmallGridRun();
  ASSERT_FALSE(result.jobs.empty());
  const mr::JobMetrics& skyline_job = result.jobs.back();
  ASSERT_GT(result.ppd, 0u);
  const size_t dim = result.skyline.dim();
  // The predictions are estimates, not bounds (they assume uniform data),
  // so assert the comparison is meaningful rather than an inequality: both
  // sides present, finite, and positive for a run that did real work.
  EXPECT_GT(cost::MapperCost(result.ppd, dim), 0.0);
  EXPECT_GT(cost::ReducerCost(result.ppd, dim), 0.0);
  EXPECT_GT(skyline_job.MaxMapCounter(mr::kCounterPartitionComparisons), 0);
  EXPECT_GT(skyline_job.MaxReduceCounter(mr::kCounterPartitionComparisons),
            0);
}

TEST(JobReportTest, StatsTextSummarizesJobsAndCostModel) {
  const SkylineResult result = SmallGridRun();
  const std::string text = RenderStatsText(result);
  EXPECT_NE(text.find("algorithm mr-gpmrs"), std::string::npos) << text;
  EXPECT_NE(text.find("job bitstring-generation"), std::string::npos);
  EXPECT_NE(text.find("job mr-gpmrs"), std::string::npos);
  EXPECT_NE(text.find("map busy max/median"), std::string::npos);
  EXPECT_NE(text.find("retries:"), std::string::npos);
  EXPECT_NE(text.find("cache hits/misses:"), std::string::npos);
  EXPECT_NE(text.find("cost model"), std::string::npos);
}

TEST(JobReportTest, WriteJobReportFileRejectsBadPath) {
  const SkylineResult result = SmallGridRun();
  const Status status =
      WriteJobReportFile(result, "/nonexistent-dir/report.json");
  EXPECT_FALSE(status.ok());
}

// ---------------------------------------------------------------------
// Fault injection: a retried task and its cache traffic must be visible
// in the rendered job metrics.
// ---------------------------------------------------------------------

/// Reads one present and one absent cache key per attempt, and fails its
/// first attempt, so the job metrics show exactly one retry and two
/// hit/miss pairs (one per attempt).
class FlakyCachingMapper : public mr::Mapper<int, int, int> {
 public:
  explicit FlakyCachingMapper(std::atomic<int>* attempts)
      : attempts_(attempts) {}
  void Setup(mr::MapContext<int, int>& ctx) override {
    ASSERT_NE(ctx.cache().Get<int>("present"), nullptr);
    EXPECT_EQ(ctx.cache().Get<int>("absent"), nullptr);
  }
  void Map(const int& record, mr::MapContext<int, int>& ctx) override {
    ctx.Emit(0, record);
  }
  void Cleanup(mr::MapContext<int, int>& ctx) override {
    (void)ctx;
    if (attempts_->fetch_add(1) < 1) {
      throw mr::TaskFailure("injected failure");
    }
  }

 private:
  std::atomic<int>* attempts_;
};

class SumReducer : public mr::Reducer<int, int, int> {
 public:
  void Reduce(const int& key, mr::ValueIterator<int>& values,
              mr::ReduceContext<int>& ctx) override {
    (void)key;
    int total = 0;
    while (values.HasNext()) {
      total += values.Next();
    }
    ctx.Emit(total);
  }
};

TEST(JobReportTest, RetriesAndCacheTrafficSurfaceInJobMetricsJson) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  mr::Job<int, int, int, int> job(
      "flaky",
      [attempts] {
        return std::make_unique<FlakyCachingMapper>(attempts.get());
      },
      [] { return std::make_unique<SumReducer>(); });
  mr::EngineOptions options;
  options.num_map_tasks = 1;
  options.num_reducers = 1;
  options.max_task_attempts = 3;
  mr::DistributedCache cache;
  ASSERT_TRUE(cache.PutValue<int>("present", 1).ok());
  auto result = job.Run(std::vector<int>{4, 5}, options, cache);
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_EQ(result.metrics.map_tasks.size(), 1u);
  EXPECT_EQ(result.metrics.map_tasks[0].attempts, 2);

  const std::string json = RenderJobMetricsJson(result.metrics);
  EXPECT_EQ(testing::JsonParseError(json), "") << json;
  EXPECT_NE(json.find("\"name\": \"flaky\""), std::string::npos) << json;
  // One retry, and one cache hit + one miss per attempt.
  EXPECT_NE(json.find("\"task_retries\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_hits\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_misses\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"attempts\": 2"), std::string::npos) << json;
}

}  // namespace
}  // namespace skymr::obs
